"""Graph & feature storage behind one abstraction.

``GraphStore`` (CSR topology) + ``FeatureStore`` (row-addressable dense
data) with two backends: ``memory`` (wraps resident arrays;
bit-identical to the pre-store code paths) and ``mmap`` (npy chunk
files + manifest + LRU residency). See ``docs/storage.md``.
"""

from repro.graph.store.base import (
    FeatureStore,
    GraphStore,
    GraphStoreBundle,
    as_bundle,
    as_topology,
)
from repro.graph.store.builder import StoreBuilder
from repro.graph.store.external import ChunkedEdgeArray, ExternalSorter
from repro.graph.store.memory import (
    MemoryFeatureStore,
    MemoryGraphStore,
    memory_bundle,
)
from repro.graph.store.mmapstore import (
    ChunkCache,
    MmapFeatureStore,
    MmapGraphStore,
    MmapStoreWriter,
    open_bundle,
    read_manifest,
    to_mmap_bundle,
)
from repro.graph.store.normalized import NormalizedGraphStore

__all__ = [
    "FeatureStore",
    "GraphStore",
    "GraphStoreBundle",
    "as_bundle",
    "as_topology",
    "StoreBuilder",
    "ChunkedEdgeArray",
    "ExternalSorter",
    "MemoryFeatureStore",
    "MemoryGraphStore",
    "memory_bundle",
    "ChunkCache",
    "MmapFeatureStore",
    "MmapGraphStore",
    "MmapStoreWriter",
    "NormalizedGraphStore",
    "open_bundle",
    "read_manifest",
    "to_mmap_bundle",
]
