"""The 1-hop Neighbor Access Controller (paper Fig. 2a).

The NAC mediates every halo exchange: local neighbours come out of shared
memory for free, remote neighbours go through an exchange policy, the
traffic meter and the compute clocks. Since the simulator runs workers
sequentially, responder and requester codec time is measured directly and
charged to the right worker, scaled by the configured codec speedup
(emulating the original C++ compression kernels; see DESIGN.md).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.cluster.engine import ClusterRuntime
from repro.core.messages import ChannelKey, ChannelMessage, ExchangePolicy
from repro.core.worker import WorkerState
from repro.faults.injector import FATE_CORRUPT, FATE_DELAY, FATE_DROP

__all__ = ["NeighborAccessController"]


class NeighborAccessController:
    """Runs one halo exchange across all worker pairs.

    When a :class:`~repro.faults.FaultInjector` is attached (see
    :attr:`injector`), every delivery can drop, corrupt or stall; the
    NAC retransmits with exponential backoff — retry bytes hit the
    traffic meter and backoff stalls the requester, so the modelled
    epoch time reflects the faults — and when retries are exhausted it
    *degrades* instead of aborting: the requester substitutes the
    ReqEC-FP predicted candidate, its last successfully received rows
    for the channel, or zeros (partial aggregation), in that order.
    """

    def __init__(
        self,
        runtime: ClusterRuntime,
        workers: list[WorkerState],
        codec_speedup: float = 20.0,
    ):
        if codec_speedup <= 0:
            raise ValueError("codec_speedup must be positive")
        self.runtime = runtime
        self.workers = workers
        self.codec_speedup = codec_speedup
        self.telemetry = runtime.telemetry
        # FaultInjector, attached by the trainer when faults are
        # enabled; None keeps the exchange loop on the fault-free path.
        self.injector = None
        self._last_proportions: dict[tuple[int, int], float] = {}
        # Last successfully received rows per channel, the stale-halo
        # fallback of last resort. Populated only under fault injection.
        self._halo_cache: dict[ChannelKey, np.ndarray] = {}

    # ------------------------------------------------------------------
    def exchange(
        self,
        layer: int,
        t: int,
        rows_of: Callable[[WorkerState], np.ndarray],
        policy: ExchangePolicy,
        category: str,
        dim: int,
        subset: dict[tuple[int, int], np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Fetch remote rows for every worker; returns halo matrices.

        Args:
            layer: Layer id baked into the channel keys.
            t: Iteration number (policies schedule on it).
            rows_of: Maps a *responding* worker's state to the local
                matrix whose rows are being served (e.g. its ``H^{l-1}``).
            policy: The exchange policy for this direction.
            category: Traffic category for the meter.
            dim: Row width, used to size the halo buffers.
            subset: Optional per-(responder, requester) indices into the
                channel's full vertex list (sampling mode); channels not
                present exchange all rows.

        Returns:
            One ``(num_halo, dim)`` array per worker, rows scattered into
            the worker's halo ordering. Vertices outside a subset keep 0.
        """
        halos = [
            np.zeros((state.num_halo, dim), dtype=np.float32)
            for state in self.workers
        ]
        self._last_proportions.clear()
        obs = self.telemetry
        with obs.span("halo_exchange", layer=layer, category=category):
            for requester in self.workers:
                i = requester.worker_id
                for owner, slots in requester.halo_slots.items():
                    responder = self.workers[owner]
                    serve_rows = responder.serves[i]
                    key = ChannelKey(layer=layer, responder=owner, requester=i)

                    rows_idx = None
                    if subset is not None:
                        rows_idx = subset.get((owner, i))
                        if rows_idx is not None and rows_idx.size == 0:
                            continue

                    source = rows_of(responder)
                    if rows_idx is None:
                        served = source[serve_rows]
                    else:
                        served = source[serve_rows[rows_idx]]

                    with obs.span("encode", responder=owner, requester=i):
                        start = time.perf_counter()
                        message = policy.respond(
                            key, served, t, rows_idx=rows_idx
                        )
                        respond_wall = time.perf_counter() - start
                    self._charge_compute(
                        owner, respond_wall, message.codec_seconds
                    )

                    delivered = self._deliver(key, message, owner, i, category)
                    if obs.enabled:
                        obs.metrics.inc(
                            "halo_rows", served.shape[0], category=category
                        )
                        obs.metrics.observe(
                            "message_bytes", message.nbytes, category=category
                        )

                    if not delivered:
                        self._notify_failure(
                            policy, key, message, rows_idx=rows_idx
                        )
                        rows = self._degraded_rows(
                            policy, key, t, served.shape[0], dim
                        )
                        if rows is None:
                            continue  # zeros: partial aggregation
                        if rows_idx is None:
                            halos[i][slots] = rows
                        else:
                            halos[i][slots[rows_idx]] = rows
                        continue

                    with obs.span("decode", responder=owner, requester=i):
                        start = time.perf_counter()
                        result = policy.receive(
                            key, message, t, rows_idx=rows_idx
                        )
                        receive_wall = time.perf_counter() - start
                    self._charge_compute(i, receive_wall, result.codec_seconds)

                    if rows_idx is None:
                        halos[i][slots] = result.rows
                        if self.injector is not None:
                            self._halo_cache[key] = np.array(
                                result.rows, copy=True
                            )
                    else:
                        halos[i][slots[rows_idx]] = result.rows

                    proportion = result.meta.get("proportion")
                    if proportion is None:
                        proportion = message.meta.get("proportion")
                    if proportion is not None:
                        self._last_proportions[(owner, i)] = float(proportion)
        return halos

    def reverse_exchange(
        self,
        layer: int,
        t: int,
        halo_rows_of: Callable[[WorkerState], np.ndarray],
        policy: ExchangePolicy,
        category: str,
        dim: int,
    ) -> list[np.ndarray]:
        """Push halo-partial gradients back to their owners and sum them.

        The mirror of :meth:`exchange`, needed by models with asymmetric
        aggregation (GAT): each worker computed *partial* gradients for
        the remote vertices it consumed; the owners must receive and sum
        those partials. The paper describes this as fetching "embedding
        gradients from out-neighbors" in the backward pass.

        Args:
            halo_rows_of: Maps a worker's state to its ``(num_halo, dim)``
                partial-gradient matrix (halo ordering).

        Returns:
            One ``(num_local, dim)`` array per worker: the sum of the
            partials every consumer computed for that worker's vertices.
        """
        accumulated = [
            np.zeros((state.num_local, dim), dtype=np.float32)
            for state in self.workers
        ]
        obs = self.telemetry
        with obs.span("halo_exchange", layer=layer, category=category,
                      direction="reverse"):
            for consumer in self.workers:
                i = consumer.worker_id
                partials = halo_rows_of(consumer)
                for owner, slots in consumer.halo_slots.items():
                    responder_rows = partials[slots]
                    owner_state = self.workers[owner]
                    local_rows = owner_state.serves[i]
                    # Channel direction: consumer responds, owner requests.
                    key = ChannelKey(layer=layer, responder=i, requester=owner)

                    with obs.span("encode", responder=i, requester=owner):
                        start = time.perf_counter()
                        message = policy.respond(key, responder_rows, t)
                        respond_wall = time.perf_counter() - start
                    self._charge_compute(i, respond_wall, message.codec_seconds)

                    delivered = self._deliver(key, message, i, owner, category)
                    if obs.enabled:
                        obs.metrics.inc(
                            "halo_rows", responder_rows.shape[0],
                            category=category,
                        )
                        obs.metrics.observe(
                            "message_bytes", message.nbytes, category=category
                        )

                    if not delivered:
                        # Lost partial gradients contribute zero this
                        # iteration; error-feedback policies fold them
                        # into the channel residual for the next one.
                        self._notify_failure(policy, key, message)
                        self.injector.counters.degraded_zero += 1
                        if obs.enabled:
                            obs.metrics.inc(
                                "fault_degraded", kind="zero",
                                category=category,
                            )
                        continue

                    with obs.span("decode", responder=i, requester=owner):
                        start = time.perf_counter()
                        result = policy.receive(key, message, t)
                        receive_wall = time.perf_counter() - start
                    self._charge_compute(
                        owner, receive_wall, result.codec_seconds
                    )

                    np.add.at(accumulated[owner], local_rows, result.rows)
        return accumulated

    def last_proportions(self) -> dict[tuple[int, int], float]:
        """Predicted-selection proportions observed in the last exchange.

        Keyed by (responder, requester); feeds the Bit-Tuner once per
        iteration, after the final forward layer (Algorithm 3).
        """
        return dict(self._last_proportions)

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------
    def _deliver(
        self,
        key: ChannelKey,
        message: ChannelMessage,
        src: int,
        dst: int,
        category: str,
    ) -> bool:
        """Attempt delivery with retransmission; returns success.

        Every attempt — including failed ones, whose bytes were on the
        wire before the loss — is charged to the traffic meter. Each
        failed attempt stalls the receiving worker for the network's
        loss-detection timeout (the RTO a reliable RPC layer waits
        before declaring the message dead), retransmissions add the
        retry policy's exponential backoff on top, and late deliveries
        stall for the configured delay.
        """
        self.runtime.send_worker_to_worker(src, dst, message.nbytes, category)
        injector = self.injector
        if injector is None:
            return True
        obs = self.telemetry
        timeout = self.runtime.spec.network.loss_detection_seconds(
            message.nbytes
        )
        fate = injector.message_fate(key.layer, src, dst, category, 0)
        attempt = 0
        while fate in (FATE_DROP, FATE_CORRUPT):
            if obs.enabled:
                obs.metrics.inc(
                    "fault_message_failures", category=category, fate=fate
                )
            self.runtime.add_stall(dst, timeout)
            attempt += 1
            if attempt > injector.config.max_retries:
                return False
            injector.counters.retries += 1
            injector.counters.retry_bytes += message.nbytes
            self.runtime.add_stall(dst, injector.backoff_seconds(attempt))
            self.runtime.send_worker_to_worker(
                src, dst, message.nbytes, category
            )
            if obs.enabled:
                obs.metrics.inc("fault_retries", category=category)
            fate = injector.message_fate(key.layer, src, dst, category, attempt)
        if fate == FATE_DELAY:
            self.runtime.add_stall(dst, injector.config.delay_seconds)
            if obs.enabled:
                obs.metrics.inc("fault_delays", category=category)
        return True

    def _notify_failure(
        self,
        policy: ExchangePolicy,
        key: ChannelKey,
        message: ChannelMessage,
        rows_idx: np.ndarray | None = None,
    ) -> None:
        """Tell a stateful policy its message never arrived.

        ReqEC-FP rolls back an unacknowledged trend snapshot so both
        ends stay in sync; ResEC-BP folds the lost gradient into the
        channel residual so error feedback re-ships it next iteration
        (the handler returns True when it compensated that way).
        """
        handler = getattr(policy, "on_delivery_failure", None)
        if handler is not None and handler(key, message, rows_idx=rows_idx):
            self.injector.counters.residual_compensations += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.inc("fault_residual_compensations")

    def _degraded_rows(
        self,
        policy: ExchangePolicy,
        key: ChannelKey,
        t: int,
        num_rows: int,
        dim: int,
    ) -> np.ndarray | None:
        """Stale-halo substitute for an undeliverable forward message.

        Preference order: the ReqEC-FP *predicted* candidate (requester
        trend state needs no payload at all), then the channel's last
        successfully received rows, then None (the halo slots keep
        their zeros — DistGNN-style partial aggregation).
        """
        counters = self.injector.counters
        obs = self.telemetry
        fallback = getattr(policy, "fallback_rows", None)
        if fallback is not None:
            rows = fallback(key, t)
            if rows is not None and rows.shape == (num_rows, dim):
                counters.degraded_predicted += 1
                if obs.enabled:
                    obs.metrics.inc("fault_degraded", kind="predicted")
                return rows
        cached = self._halo_cache.get(key)
        if cached is not None and cached.shape == (num_rows, dim):
            counters.degraded_cached += 1
            if obs.enabled:
                obs.metrics.inc("fault_degraded", kind="cached")
            return cached
        counters.degraded_zero += 1
        if obs.enabled:
            obs.metrics.inc("fault_degraded", kind="zero")
        return None

    def invalidate_worker(self, worker: int) -> None:
        """Drop cached halo rows touching ``worker`` (crash recovery)."""
        stale = [
            key for key in self._halo_cache
            if worker in (key.responder, key.requester)
        ]
        for key in stale:
            del self._halo_cache[key]

    # ------------------------------------------------------------------
    def _charge_compute(
        self, worker: int, wall_seconds: float, codec_seconds: float
    ) -> None:
        """Charge policy time, discounting codec work by the speedup."""
        codec_seconds = min(codec_seconds, wall_seconds)
        other = wall_seconds - codec_seconds
        self.runtime.add_compute(
            worker, other + codec_seconds / self.codec_speedup
        )
