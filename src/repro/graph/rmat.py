"""R-MAT (recursive matrix) graph generator.

The planted-partition generator in :mod:`repro.graph.generators` produces
learnable community structure; R-MAT produces the opposite stress case —
heavily skewed, community-free graphs like web crawls — which is the
worst case for edge-cut partitioners and a good adversarial input for
the communication layer (huge hubs concentrate halo traffic on few
workers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.attributed import AttributedGraph, make_split_masks
from repro.graph.csr import from_edge_list
from repro.graph.generators import class_features

__all__ = ["RMATSpec", "rmat_edges", "generate_rmat_graph"]


@dataclass(frozen=True)
class RMATSpec:
    """Parameters of an R-MAT graph.

    Attributes:
        scale: ``log2`` of the vertex count.
        edge_factor: Directed edges per vertex (before dedup).
        a / b / c: Quadrant probabilities (``d = 1 - a - b - c``). The
            classic Graph500 skew is (0.57, 0.19, 0.19).
        feature_dim / num_classes: Attribute generation (labels are
            random — R-MAT has no community signal to learn).
        seed: Generator seed.
    """

    scale: int = 10
    edge_factor: int = 8
    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    feature_dim: int = 16
    num_classes: int = 4
    seed: int = 0

    def __post_init__(self):
        if self.scale < 1 or self.scale > 26:
            raise ValueError("scale must be in [1, 26]")
        if self.edge_factor < 1:
            raise ValueError("edge_factor must be >= 1")
        total = self.a + self.b + self.c
        if min(self.a, self.b, self.c) < 0 or total >= 1.0:
            raise ValueError("need a, b, c >= 0 and a + b + c < 1")

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale


def rmat_edges(spec: RMATSpec, rng: np.random.Generator) -> np.ndarray:
    """Sample the edge list of an R-MAT graph (vectorized recursion).

    Each edge picks one quadrant per bit level; accumulating the chosen
    bits yields the endpoints. Self-loops are dropped, duplicates kept
    (deduplication happens in CSR construction).
    """
    num_edges = spec.num_vertices * spec.edge_factor
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    p_a, p_b, p_c = spec.a, spec.b, spec.c
    for _ in range(spec.scale):
        draw = rng.random(num_edges)
        # Quadrants: a = (0,0), b = (0,1), c = (1,0), d = (1,1); the
        # first bit belongs to src, the second to dst.
        src_bit = draw >= p_a + p_b
        dst_bit = ((draw >= p_a) & (draw < p_a + p_b)) | (
            draw >= p_a + p_b + p_c
        )
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    keep = src != dst
    return np.stack([src[keep], dst[keep]], axis=1)


def generate_rmat_graph(spec: RMATSpec) -> AttributedGraph:
    """Build an attributed R-MAT graph (symmetric arcs, random labels)."""
    rng = np.random.default_rng(spec.seed)
    edges = rmat_edges(spec, rng)
    both = np.concatenate([edges, edges[:, ::-1]], axis=0)
    adjacency = from_edge_list(both, spec.num_vertices, deduplicate=True)

    labels = rng.integers(0, spec.num_classes, spec.num_vertices)
    labels[:spec.num_classes] = np.arange(spec.num_classes)
    features = class_features(labels, spec.feature_dim, noise=2.0, rng=rng)

    n = spec.num_vertices
    train = max(n // 10, spec.num_classes)
    val = max(n // 20, 1)
    test = max(n // 5, 1)
    masks = make_split_masks(n, train, val, test, rng)
    return AttributedGraph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        train_mask=masks[0],
        val_mask=masks[1],
        test_mask=masks[2],
        num_classes=spec.num_classes,
        name=f"rmat-{spec.scale}",
        meta={
            "generator": "rmat",
            "scale": spec.scale,
            "edge_factor": spec.edge_factor,
            "quadrants": (spec.a, spec.b, spec.c),
            "seed": spec.seed,
        },
    )
