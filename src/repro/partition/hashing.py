"""Hash partitioning — the paper's default.

Vertices are assigned round-robin by id (equal-vertex partitioning with
Hash, section V-D), which is essentially free to compute — the paper
reports 2.05 s on OGBN-Products with a single thread — but ignores
locality, so it produces the largest edge cut of the implemented methods.
"""

from __future__ import annotations

import time

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.store.base import GraphStore
from repro.partition.base import Partition

__all__ = ["HashPartitioner"]


class HashPartitioner:
    """Assign vertex ``v`` to part ``hash(v) % num_parts``.

    With ``salt == 0`` this degenerates to ``v % num_parts`` (round-robin),
    which is both the fastest option and perfectly balanced. A non-zero
    salt mixes the ids first, which matters when vertex ids correlate with
    community structure.

    Hash partitioning never touches the adjacency columns, which makes it
    the only partitioner that is free even for out-of-core
    :class:`~repro.graph.store.GraphStore` inputs — the large bench tier
    relies on this.
    """

    name = "hash"

    def __init__(self, salt: int = 0):
        self.salt = salt

    def partition(
        self, graph: CSRGraph | GraphStore, num_parts: int
    ) -> Partition:
        start = time.perf_counter()
        n = graph.num_vertices
        ids = np.arange(n, dtype=np.uint64)
        if self.salt:
            # Fibonacci hashing: multiply by 2^64 / phi and fold.
            mixed = (ids + np.uint64(self.salt)) * np.uint64(0x9E3779B97F4A7C15)
            assignment = (mixed % np.uint64(num_parts)).astype(np.int64)
        else:
            assignment = (ids % np.uint64(num_parts)).astype(np.int64)
        return Partition(
            assignment=assignment,
            num_parts=num_parts,
            method=self.name,
            seconds=time.perf_counter() - start,
        )
