"""Partition quality statistics.

These quantities drive the communication cost model: the number of *cut*
edges determines how many embedding messages cross machine boundaries each
layer, and ``avg_remote_neighbors`` is the paper's ``g_rmt`` in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.partition.base import Partition

__all__ = [
    "PartitionStats",
    "partition_stats",
    "part_loads",
    "remote_neighbor_lists",
]


@dataclass(frozen=True)
class PartitionStats:
    """Quality metrics for one partition of one graph.

    Attributes:
        num_parts: Number of parts.
        edge_cut: Number of edges whose endpoints live on different parts.
        edge_cut_ratio: ``edge_cut / num_edges``.
        max_part_size / min_part_size: Extremes of the part sizes.
        balance: ``max_part_size / ideal`` where ideal is ``n / num_parts``.
        avg_remote_neighbors: Mean number of *distinct* remote 1-hop
            neighbours per vertex (the paper's ``g_rmt``).
        total_halo: Sum over parts of the distinct remote vertices each
            part must fetch per layer.
    """

    num_parts: int
    edge_cut: int
    edge_cut_ratio: float
    max_part_size: int
    min_part_size: int
    balance: float
    avg_remote_neighbors: float
    total_halo: int


def partition_stats(graph: CSRGraph, partition: Partition) -> PartitionStats:
    """Compute :class:`PartitionStats` for ``partition`` over ``graph``."""
    if partition.num_vertices != graph.num_vertices:
        raise ValueError("partition and graph vertex counts differ")
    assignment = partition.assignment
    src = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), np.diff(graph.indptr)
    )
    cut_mask = assignment[src] != assignment[graph.indices]
    edge_cut = int(cut_mask.sum())

    sizes = partition.part_sizes()
    ideal = graph.num_vertices / partition.num_parts

    remote_per_vertex = np.zeros(graph.num_vertices, dtype=np.int64)
    total_halo = 0
    for part in range(partition.num_parts):
        halo: set[int] = set()
        for v in partition.part_vertices(part):
            count = 0
            seen: set[int] = set()
            for u in graph.neighbors(int(v)):
                u = int(u)
                if assignment[u] != part and u not in seen:
                    seen.add(u)
                    count += 1
                    halo.add(u)
            remote_per_vertex[v] = count
        total_halo += len(halo)

    return PartitionStats(
        num_parts=partition.num_parts,
        edge_cut=edge_cut,
        edge_cut_ratio=edge_cut / graph.num_edges if graph.num_edges else 0.0,
        max_part_size=int(sizes.max()) if sizes.size else 0,
        min_part_size=int(sizes.min()) if sizes.size else 0,
        balance=float(sizes.max() / ideal) if ideal else 0.0,
        avg_remote_neighbors=float(remote_per_vertex.mean()),
        total_halo=total_halo,
    )


def part_loads(
    graph: CSRGraph, assignment: np.ndarray, num_parts: int
) -> np.ndarray:
    """Per-part compute-load proxy: owned vertices plus incident edges.

    The elastic membership layer uses this to pick the least-loaded
    survivor when a dead worker's partition needs a new home — edge
    count dominates both the aggregation FLOPs and the halo traffic a
    part generates, and vertex count covers the dense layer work.
    """
    if assignment.shape[0] != graph.num_vertices:
        raise ValueError("assignment does not match the graph")
    degrees = np.diff(graph.indptr).astype(np.int64)
    vertices = np.bincount(assignment, minlength=num_parts)
    edges = np.bincount(
        assignment, weights=degrees.astype(np.float64), minlength=num_parts
    ).astype(np.int64)
    return vertices + edges


def remote_neighbor_lists(
    graph: CSRGraph, partition: Partition
) -> list[dict[int, np.ndarray]]:
    """Per-part map: remote part id -> sorted vertex ids needed from it.

    ``result[i][j]`` lists the global vertex ids owned by part ``j`` whose
    embeddings part ``i`` needs each layer. This is exactly the request
    pattern the Neighbor Access Controller issues.
    """
    assignment = partition.assignment
    requests: list[dict[int, set[int]]] = [
        {} for _ in range(partition.num_parts)
    ]
    for part in range(partition.num_parts):
        for v in partition.part_vertices(part):
            for u in graph.neighbors(int(v)):
                u = int(u)
                owner = int(assignment[u])
                if owner != part:
                    requests[part].setdefault(owner, set()).add(u)
    return [
        {
            owner: np.array(sorted(vertices), dtype=np.int64)
            for owner, vertices in part_requests.items()
        }
        for part_requests in requests
    ]
