"""Distributed GraphSAGE (mean aggregator, concatenation variant).

The paper evaluates GraphSAGE alongside GCN, noting both "enjoy similar
performance improvements" from EC-Graph's optimizations. The SAGE layer
keeps separate transforms for the vertex itself and the neighbour mean:

    Z_i = H_i W_self + mean_{j in N(i)} H_j  W_neigh + b

which is the concatenation form ``[H_i || mean] W`` written with the
weight matrix split in two. The halo exchange pattern is identical to
GCN — embeddings forward, embedding gradients backward — so every
EC-Graph policy (compression, ReqEC-FP, ResEC-BP, delayed) applies
unchanged.

The mean aggregation matrix is row-normalized and therefore *not*
symmetric, but its sparsity structure is (undirected graphs), so the
backward pass can still aggregate fetched gradient halos locally using
the transposed weights ``A_row[i, j] = 1 / (deg(i) + 1)``.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix

from repro.core.models import bias_name, weight_name
from repro.core.trainer import ECGraphTrainer
from repro.nn.init import glorot_uniform
from repro.nn.losses import softmax_cross_entropy

__all__ = ["SAGETrainer", "self_weight_name"]


def self_weight_name(layer: int) -> str:
    """Parameter key of a layer's self-transform ``W_self``."""
    return f"Ws{layer}"


class _SAGECache:
    """Forward state per layer: inputs, neighbour means, pre-activations."""

    def __init__(self, h_local, aggregated, z, output):
        self.h_local = h_local
        self.aggregated = aggregated
        self.z = z
        self.output = output


class SAGETrainer(ECGraphTrainer):
    """Full-batch distributed GraphSAGE-mean training.

    ``weight_name(l)`` holds ``W_neigh`` and :func:`self_weight_name`
    holds ``W_self``; the GCN trainer's setup (row normalization is
    selected automatically for ``model='sage'``) provides the local mean
    aggregation rows, and this class adds the transposed-weight rows
    needed by the asymmetric backward aggregation.
    """

    def setup(self) -> None:
        if self._setup_done:
            return
        if self.model_config.model != "sage":
            raise ValueError(
                "SAGETrainer requires ModelConfig(model='sage'); got "
                f"{self.model_config.model!r}"
            )
        super().setup()
        rng = np.random.default_rng(self.config.seed + 13)
        for layer in range(self.params.num_layers):
            d_in, d_out = self.params.dims[layer], self.params.dims[layer + 1]
            self.servers.register(
                self_weight_name(layer), glorot_uniform((d_in, d_out), rng)
            )
        self._build_transposed_rows()
        self._sage_caches: list[list[_SAGECache | None]] = []

    def _build_transposed_rows(self) -> None:
        """Rows of ``A_row^T`` per worker: entry (j, i) = 1/(deg(i)+1).

        The structure equals each worker's local adjacency (symmetric
        graph); only the weights change — they follow the *column*
        vertex's degree instead of the row's.
        """
        degrees = np.diff(self.graph.adjacency.indptr).astype(np.float64)
        self._a_transposed: list[csr_matrix] = []
        for state in self.workers:
            sub = state.sub
            compact_to_global = np.concatenate(
                [sub.local_vertices, sub.remote_vertices]
            )
            col_global = compact_to_global[sub.indices]
            weights = (1.0 / (degrees[col_global] + 1.0)).astype(np.float32)
            self._a_transposed.append(
                csr_matrix(
                    (weights, sub.indices, sub.indptr),
                    shape=state.a_local.shape,
                )
            )

    # ------------------------------------------------------------------
    def _sage_layer_forward(self, state, h_cat, w_self, w_neigh, bias,
                            is_last: bool) -> _SAGECache:
        h_local = h_cat[:state.num_local]
        aggregated = state.a_local @ h_cat
        z = (h_local @ w_self + aggregated @ w_neigh).astype(np.float32)
        if bias is not None:
            z = z + bias
        output = z if is_last else self.params.activation(z).astype(np.float32)
        return _SAGECache(h_local, aggregated, z, output)

    def _forward(self, t: int):
        num_layers = self.params.num_layers
        self._sage_caches = [[None] * (num_layers + 1) for _ in self.workers]
        for state in self.workers:
            state.reset_iteration(num_layers)

        counters = {"train": [0, 0], "val": [0, 0], "test": [0, 0]}
        total_loss = 0.0
        for layer in range(1, num_layers + 1):
            names = [weight_name(layer - 1), self_weight_name(layer - 1)]
            if self.params.use_bias:
                names.append(bias_name(layer - 1))
            pulled = {
                state.worker_id: self.servers.pull(state.worker_id, names)
                for state in self.workers
            }
            halos = self._sage_halos(layer, t)
            for state in self.workers:
                i = state.worker_id
                prev = (
                    state.features if layer == 1
                    else self._sage_caches[i][layer - 1].output
                )
                with self.runtime.worker_compute(i):
                    h_cat = np.concatenate([prev, halos[i]], axis=0)
                    cache = self._sage_layer_forward(
                        state, h_cat,
                        pulled[i][self_weight_name(layer - 1)],
                        pulled[i][weight_name(layer - 1)],
                        pulled[i].get(bias_name(layer - 1)),
                        is_last=(layer == num_layers),
                    )
                self._sage_caches[i][layer] = cache

        for state in self.workers:
            i = state.worker_id
            logits = self._sage_caches[i][num_layers].output
            with self.runtime.worker_compute(i):
                result = softmax_cross_entropy(
                    logits, state.labels, state.train_mask
                )
                local = int(state.train_mask.sum())
                scale = local / self._global_train_count if local else 0.0
                state.grad_rows[num_layers] = (result.grad * scale).astype(
                    np.float32
                )
                total_loss += result.loss * scale
                counters["train"][0] += result.correct
                counters["train"][1] += result.count
                predictions = logits.argmax(axis=1)
                for split, mask in (("val", state.val_mask),
                                    ("test", state.test_mask)):
                    counters[split][0] += int(
                        (predictions[mask] == state.labels[mask]).sum()
                    )
                    counters[split][1] += int(mask.sum())

        if self.config.fp_mode == "reqec":
            for pair, proportion in self.nac.last_proportions().items():
                self.tuner.update(pair, proportion)
        return total_loss, {s: (c, n) for s, (c, n) in counters.items()}

    def _sage_halos(self, layer: int, t: int):
        if layer == 1 and self.config.cache_first_hop:
            return [state.halo_features for state in self.workers]
        if layer == 1:
            return self.nac.exchange(
                layer=0, t=t, rows_of=lambda s: s.features,
                policy=self._fp_policy, category="fp_embeddings",
                dim=self.graph.feature_dim,
            )
        return self.nac.exchange(
            layer=layer - 1, t=t,
            rows_of=lambda s, _l=layer: self._sage_caches[s.worker_id][
                _l - 1
            ].output,
            policy=self._fp_policy, category="fp_embeddings",
            dim=self.params.dims[layer - 1],
        )

    # ------------------------------------------------------------------
    def _backward(self, t: int) -> None:
        num_layers = self.params.num_layers
        grads: dict[int, dict[str, np.ndarray]] = {
            state.worker_id: {} for state in self.workers
        }
        for layer in range(num_layers, 0, -1):
            w_self = self.servers.get(self_weight_name(layer - 1))
            w_neigh = self.servers.get(weight_name(layer - 1))
            for state in self.workers:
                i = state.worker_id
                cache = self._sage_caches[i][layer]
                g = state.grad_rows[layer]
                with self.runtime.worker_compute(i):
                    grads[i][self_weight_name(layer - 1)] = (
                        cache.h_local.T @ g
                    ).astype(np.float32)
                    grads[i][weight_name(layer - 1)] = (
                        cache.aggregated.T @ g
                    ).astype(np.float32)
                    if self.params.use_bias:
                        grads[i][bias_name(layer - 1)] = g.sum(axis=0).astype(
                            np.float32
                        )

            if layer > 1:
                halos = self.nac.exchange(
                    layer=layer, t=t,
                    rows_of=lambda s, _l=layer: s.grad_rows[_l],
                    policy=self._bp_policy, category="bp_gradients",
                    dim=self.params.dims[layer],
                )
                for state in self.workers:
                    i = state.worker_id
                    cache_prev = self._sage_caches[i][layer - 1]
                    g = state.grad_rows[layer]
                    with self.runtime.worker_compute(i):
                        g_cat = np.concatenate([g, halos[i]], axis=0)
                        # Self path + transposed mean aggregation path.
                        dh = g @ w_self.T + (
                            self._a_transposed[i] @ g_cat
                        ) @ w_neigh.T
                        state.grad_rows[layer - 1] = (
                            dh * self.params.activation.derivative(
                                cache_prev.z
                            )
                        ).astype(np.float32)

        for state in self.workers:
            self.servers.push(state.worker_id, grads[state.worker_id])
        self.servers.apply_updates()

    # ------------------------------------------------------------------
    def evaluate_exact(self) -> dict[str, float]:
        """Exact-communication SAGE inference."""
        from repro.cluster.engine import ClusterRuntime
        from repro.core.messages import RawPolicy
        from repro.core.nac import NeighborAccessController

        self.setup()
        scratch_runtime = ClusterRuntime(self.spec)
        scratch_nac = NeighborAccessController(
            scratch_runtime, self.workers, self.config.codec_speedup
        )
        raw = RawPolicy()
        num_layers = self.params.num_layers
        outputs = [state.features for state in self.workers]
        for layer in range(1, num_layers + 1):
            w_self = self.servers.get(self_weight_name(layer - 1))
            w_neigh = self.servers.get(weight_name(layer - 1))
            bias = (
                self.servers.get(bias_name(layer - 1))
                if self.params.use_bias else None
            )
            if layer == 1 and self.config.cache_first_hop:
                halos = [state.halo_features for state in self.workers]
            else:
                halos = scratch_nac.exchange(
                    layer=layer - 1, t=0,
                    rows_of=lambda s: outputs[s.worker_id],
                    policy=raw, category="eval",
                    dim=outputs[0].shape[1],
                )
            new_outputs = []
            for state in self.workers:
                h_cat = np.concatenate(
                    [outputs[state.worker_id], halos[state.worker_id]],
                    axis=0,
                )
                cache = self._sage_layer_forward(
                    state, h_cat, w_self, w_neigh, bias,
                    is_last=(layer == num_layers),
                )
                new_outputs.append(cache.output)
            outputs = new_outputs

        metrics = {}
        for split, mask_of in (("train", lambda s: s.train_mask),
                               ("val", lambda s: s.val_mask),
                               ("test", lambda s: s.test_mask)):
            correct = count = 0
            for state in self.workers:
                mask = mask_of(state)
                predictions = outputs[state.worker_id].argmax(axis=1)
                correct += int((predictions[mask] == state.labels[mask]).sum())
                count += int(mask.sum())
            metrics[split] = correct / count if count else 0.0
        return metrics
