"""The ``repro report`` renderer: build_report and both formats.

Renders one instrumented run (and one un-instrumented run — the
summary must still come out) and asserts the sections the CI smoke
check depends on: all five engine stages present, the waterfall keyed
by channel, and the HTML artifact self-contained with a parseable
embedded JSON payload.
"""

import json

import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer
from repro.faults import FaultConfig
from repro.obs import ENGINE_STAGES, ObsConfig
from repro.obs.report import (
    build_report,
    missing_stages,
    render_html,
    render_markdown,
    write_report,
)


def _trainer(graph, obs, **overrides):
    config = ECGraphConfig(seed=1, obs=obs, **overrides)
    return ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=8),
        ClusterSpec(num_workers=4, workers_per_machine=2), config,
    )


@pytest.fixture(scope="module")
def instrumented(small_graph_module):
    trainer = _trainer(small_graph_module, ObsConfig(enabled=True))
    return trainer.train(3)


@pytest.fixture(scope="module")
def small_graph_module():
    from repro.graph.generators import GraphSpec, generate_graph
    return generate_graph(GraphSpec(
        name="unit-small", num_vertices=96, avg_degree=6.0, feature_dim=12,
        num_classes=3, homophily=0.9, feature_noise=0.8,
        train=40, val=16, test=32, seed=7,
    ))


class TestBuildReport:
    def test_sections_populated(self, instrumented):
        data = build_report(instrumented)
        assert data["summary"]["epochs"] == 3
        assert data["summary"]["total_bytes"] > 0
        assert len(data["loss_curve"]) == 3
        assert set(data["stages"]) == set(ENGINE_STAGES)
        assert data["coverage"] > 0.5
        assert data["channels"]
        assert set(data["directions"]) >= {"fp", "bp"}
        assert data["health"] is not None
        assert data["dropped_spans"] == 0

    def test_no_engine_stage_missing(self, instrumented):
        assert missing_stages(build_report(instrumented)) == []

    def test_channel_keys_are_human_readable(self, instrumented):
        data = build_report(instrumented)
        for ch in data["channels"]:
            responder_consumer, layer, direction = ch["channel"].split("/")
            assert "->" in responder_consumer
            assert layer.startswith("L")
            assert direction in {"fp", "bp"}

    def test_is_json_serializable(self, instrumented):
        data = build_report(instrumented)
        assert json.loads(json.dumps(data, sort_keys=True)) == data

    def test_uninstrumented_run_still_summarizes(self, small_graph_module):
        run = _trainer(small_graph_module, ObsConfig()).train(2)
        data = build_report(run)
        assert run.telemetry is None
        assert data["summary"]["epochs"] == 2
        assert data["stages"] == {}
        assert data["channels"] == []
        assert missing_stages(data) == list(ENGINE_STAGES)

    def test_fault_counters_surface(self, small_graph_module):
        trainer = _trainer(
            small_graph_module, ObsConfig(enabled=True),
            faults=FaultConfig(enabled=True, seed=5, drop_prob=0.3,
                               max_retries=1),
        )
        data = build_report(trainer.train(3))
        assert data["faults"].get("fault_retries", 0) > 0
        assert "fault_degraded" in data["faults"]


class TestMarkdown:
    def test_contains_stage_table(self, instrumented):
        text = render_markdown(build_report(instrumented))
        assert text.startswith("# Epoch report:")
        assert "## Stage timeline" in text
        for stage in ENGINE_STAGES:
            assert f"| {stage} |" in text
        assert "## Bandwidth waterfall" in text
        assert "## Compression frontier" in text

    def test_uninstrumented_markdown_renders(self, small_graph_module):
        run = _trainer(small_graph_module, ObsConfig()).train(2)
        text = render_markdown(build_report(run))
        assert "## Run summary" in text
        assert "## Stage timeline" not in text


class TestHtml:
    def test_self_contained_document(self, instrumented):
        text = render_html(build_report(instrumented))
        assert text.startswith("<!DOCTYPE html>")
        assert "<style>" in text
        # No external assets: one file must open anywhere.
        assert "http://" not in text and "https://" not in text
        for stage in ENGINE_STAGES:
            assert f"<td>{stage}</td>" in text

    def test_embedded_json_payload_round_trips(self, instrumented):
        data = build_report(instrumented)
        text = render_html(data)
        marker = "<script type='application/json' id='report-data'>"
        start = text.index(marker) + len(marker)
        end = text.index("</script>", start)
        assert json.loads(text[start:end]) == data


class TestWriteReport:
    def test_writes_both_formats(self, instrumented, tmp_path):
        html_path = write_report(instrumented, tmp_path / "r" / "e.html")
        md_path = write_report(
            instrumented, tmp_path / "e.md", fmt="markdown"
        )
        assert html_path.read_text().startswith("<!DOCTYPE html>")
        assert md_path.read_text().startswith("# Epoch report:")

    def test_rejects_unknown_format(self, instrumented, tmp_path):
        with pytest.raises(ValueError):
            write_report(instrumented, tmp_path / "e.pdf", fmt="pdf")
