"""GNN model parameterization.

A model here is just the layer dimension ladder plus activation — the
distributed forward/backward math lives in :mod:`repro.core.gcn_math` and
is shared by GCN and GraphSAGE-mean (they differ only in the adjacency
normalization, chosen when the trainer normalizes the graph). Parameters
are created with a shared seed so every worker and server can agree on the
initial values without broadcasting them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ModelConfig
from repro.nn.activations import Activation, get_activation
from repro.nn.init import glorot_uniform, zeros

__all__ = ["GNNParameters", "build_parameters", "weight_name", "bias_name"]


def weight_name(layer: int) -> str:
    """Parameter-server key of the layer's weight matrix ``W^l``."""
    return f"W{layer}"


def bias_name(layer: int) -> str:
    """Parameter-server key of the layer's bias vector ``b^l``."""
    return f"b{layer}"


@dataclass
class GNNParameters:
    """Initial parameters plus the metadata the trainer needs.

    Attributes:
        dims: ``[d0, d1, ..., dL]`` layer dimension ladder.
        tensors: Name -> initial value for every learnable tensor.
        activation: Hidden-layer activation.
        use_bias: Whether bias tensors exist.
    """

    dims: list[int]
    tensors: dict[str, np.ndarray]
    activation: Activation
    use_bias: bool

    @property
    def num_layers(self) -> int:
        return len(self.dims) - 1

    def layer_param_names(self, layer: int) -> list[str]:
        """Names of the tensors used by layer ``layer`` (0-based)."""
        names = [weight_name(layer)]
        if self.use_bias:
            names.append(bias_name(layer))
        return names

    def all_param_names(self) -> list[str]:
        names: list[str] = []
        for layer in range(self.num_layers):
            names.extend(self.layer_param_names(layer))
        return names

    def num_parameters(self) -> int:
        """Total learnable scalar count."""
        return sum(int(np.prod(t.shape)) for t in self.tensors.values())


def build_parameters(
    config: ModelConfig,
    input_dim: int,
    num_classes: int,
    seed: int = 0,
) -> GNNParameters:
    """Initialize all layer weights/biases from a single seed."""
    rng = np.random.default_rng(seed)
    dims = config.layer_dims(input_dim, num_classes)
    tensors: dict[str, np.ndarray] = {}
    for layer in range(len(dims) - 1):
        tensors[weight_name(layer)] = glorot_uniform(
            (dims[layer], dims[layer + 1]), rng
        )
        if config.use_bias:
            tensors[bias_name(layer)] = zeros((dims[layer + 1],))
    return GNNParameters(
        dims=dims,
        tensors=tensors,
        activation=get_activation(config.activation),
        use_bias=config.use_bias,
    )
