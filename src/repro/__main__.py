"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``datasets`` — list the paper-matched datasets and their statistics;
* ``train``    — train one system on one dataset and print the run;
* ``compare``  — train several systems on one dataset side by side;
* ``partition`` — partition a dataset and print quality statistics.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.convergence import convergence_target, summarize
from repro.analysis.reporting import format_table
from repro.baselines import run_system, system_names
from repro.graph.datasets import PAPER_STATS, dataset_names, load_dataset
from repro.partition import make_partitioner, partition_stats


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in dataset_names():
        stats = PAPER_STATS[name]
        graph = load_dataset(name, profile=args.profile)
        rows.append([
            name,
            f"{stats.num_vertices:,}",
            f"{graph.num_vertices:,}",
            f"{stats.avg_degree:.1f}",
            f"{graph.adjacency.average_degree:.1f}",
            stats.num_classes,
            graph.num_classes,
        ])
    print(format_table(
        ["dataset", "paper |V|", "sim |V|", "paper deg", "sim deg",
         "paper classes", "sim classes"],
        rows,
        title=f"Datasets (profile={args.profile})",
    ))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(graph.summary())
    run = run_system(
        args.system, graph,
        num_layers=args.layers, hidden_dim=args.hidden,
        num_workers=args.workers, num_epochs=args.epochs,
        patience=args.patience,
    )
    print(format_table(
        ["epochs", "best acc", "final acc", "epoch time", "traffic"],
        [[
            run.num_epochs,
            run.best_test_accuracy(),
            run.final_test_accuracy
            if run.final_test_accuracy is not None else "-",
            f"{run.avg_epoch_seconds() * 1e3:.2f}ms",
            f"{run.total_bytes() / 1e6:.1f}MB",
        ]],
        title=f"{args.system} on {graph.name}",
    ))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(graph.summary())
    runs = []
    for system in args.systems:
        print(f"training {system} ...", file=sys.stderr)
        runs.append(run_system(
            system, graph,
            num_layers=args.layers, hidden_dim=args.hidden,
            num_workers=args.workers, num_epochs=args.epochs,
        ))
    target = convergence_target(runs, slack=0.97)
    rows = []
    for run in runs:
        summary = summarize(run, target)
        rows.append([
            run.name,
            f"{summary.avg_epoch_seconds * 1e3:.2f}ms",
            summary.best_test_accuracy,
            f"{summary.total_bytes / 1e6:.1f}MB",
            summary.epochs_to_target or "-",
        ])
    print(format_table(
        ["system", "epoch time", "best acc", "traffic",
         f"epochs to {target:.3f}"],
        rows,
    ))
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, profile=args.profile, seed=args.seed)
    print(graph.summary())
    rows = []
    for method in args.methods:
        partitioner = make_partitioner(method, seed=args.seed)
        partition = partitioner.partition(graph.adjacency, args.workers)
        stats = partition_stats(graph.adjacency, partition)
        rows.append([
            method,
            f"{partition.seconds * 1e3:.1f}ms",
            f"{stats.edge_cut_ratio:.3f}",
            f"{stats.balance:.2f}",
            f"{stats.avg_remote_neighbors:.2f}",
        ])
    print(format_table(
        ["method", "time", "edge-cut", "balance", "g_rmt"],
        rows,
        title=f"{args.workers}-way partitions of {graph.name}",
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EC-Graph reproduction: distributed GNN training "
                    "with error-compensated compression",
    )
    parser.add_argument("--profile", default="bench",
                        choices=["tiny", "bench", "full"],
                        help="dataset size profile")
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list datasets").set_defaults(
        func=_cmd_datasets
    )

    train = sub.add_parser("train", help="train one system")
    train.add_argument("--system", default="ecgraph", choices=system_names())
    train.add_argument("--dataset", default="cora", choices=dataset_names())
    train.add_argument("--workers", type=int, default=6)
    train.add_argument("--layers", type=int, default=2)
    train.add_argument("--hidden", type=int, default=16)
    train.add_argument("--epochs", type=int, default=100)
    train.add_argument("--patience", type=int, default=None)
    train.set_defaults(func=_cmd_train)

    compare = sub.add_parser("compare", help="train several systems")
    compare.add_argument("--systems", nargs="+",
                         default=["ecgraph", "noncp", "distgnn"],
                         choices=system_names())
    compare.add_argument("--dataset", default="reddit",
                         choices=dataset_names())
    compare.add_argument("--workers", type=int, default=6)
    compare.add_argument("--layers", type=int, default=2)
    compare.add_argument("--hidden", type=int, default=16)
    compare.add_argument("--epochs", type=int, default=60)
    compare.set_defaults(func=_cmd_compare)

    part = sub.add_parser("partition", help="partition quality statistics")
    part.add_argument("--dataset", default="reddit", choices=dataset_names())
    part.add_argument("--workers", type=int, default=6)
    part.add_argument("--methods", nargs="+",
                      default=["hash", "bfs", "metis"],
                      choices=["hash", "bfs", "metis", "spectral"])
    part.set_defaults(func=_cmd_partition)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
