"""Simulated shared file system (the paper's NFS).

After partitioning, each worker loads its subgraph (topology + features)
from a shared store. This in-memory stand-in tracks the bytes each worker
reads so preprocessing I/O can be charged in the Fig. 9 end-to-end
accounting, and can optionally spill to disk for large artifacts.
"""

from __future__ import annotations

import pickle  # ecg: ignore[ECG006] simulated in-process NFS; blobs never cross a process or trust boundary
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SharedStore"]


@dataclass
class SharedStore:
    """A key/value store shared by all workers.

    Attributes:
        spill_dir: When set, values are pickled to disk under this
            directory instead of kept in memory (useful for large graphs).
    """

    spill_dir: Path | None = None
    _memory: dict[str, object] = field(default_factory=dict, repr=False)
    _sizes: dict[str, int] = field(default_factory=dict, repr=False)
    _reads: dict[str, int] = field(default_factory=dict, repr=False)

    def put(self, key: str, value: object) -> int:
        """Store ``value`` under ``key``; returns its serialized size."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)  # ecg: ignore[ECG006] same-process store; bytes are consumed only by get() below
        self._sizes[key] = len(blob)
        if self.spill_dir is not None:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
            (self.spill_dir / self._filename(key)).write_bytes(blob)
        else:
            self._memory[key] = blob
        return len(blob)

    def get(self, key: str) -> object:
        """Load the value stored under ``key``, counting the read."""
        if key not in self._sizes:
            raise KeyError(f"no such key in shared store: {key!r}")
        self._reads[key] = self._reads.get(key, 0) + 1
        if self.spill_dir is not None:
            blob = (self.spill_dir / self._filename(key)).read_bytes()
        else:
            blob = self._memory[key]
        return pickle.loads(blob)  # ecg: ignore[ECG006] bytes produced by put() in this same process, never from the wire

    def size_of(self, key: str) -> int:
        """Serialized size of one entry in bytes."""
        return self._sizes[key]

    def keys(self) -> list[str]:
        return list(self._sizes)

    def total_read_bytes(self) -> int:
        """Total bytes served to readers so far."""
        return sum(
            self._sizes[key] * count for key, count in self._reads.items()
        )

    @staticmethod
    def _filename(key: str) -> str:
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in key)
        return f"{safe}.pkl"
