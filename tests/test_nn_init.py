"""Unit tests for weight initializers."""

import numpy as np
import pytest

from repro.nn.init import (
    get_initializer,
    glorot_normal,
    glorot_uniform,
    he_normal,
    he_uniform,
    uniform,
    zeros,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestGlorotUniform:
    def test_shape_and_dtype(self, rng):
        w = glorot_uniform((64, 32), rng)
        assert w.shape == (64, 32)
        assert w.dtype == np.float32

    def test_bounds(self, rng):
        w = glorot_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert np.all(w >= -limit)
        assert np.all(w <= limit)

    def test_deterministic_given_seed(self):
        a = glorot_uniform((8, 8), np.random.default_rng(3))
        b = glorot_uniform((8, 8), np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = glorot_uniform((8, 8), np.random.default_rng(1))
        b = glorot_uniform((8, 8), np.random.default_rng(2))
        assert not np.array_equal(a, b)

    def test_variance_scales_with_fan(self, rng):
        small = glorot_uniform((10, 10), rng)
        large = glorot_uniform((1000, 1000), rng)
        assert small.std() > large.std()


class TestGlorotNormal:
    def test_std_close_to_formula(self, rng):
        w = glorot_normal((500, 500), rng)
        expected = np.sqrt(2.0 / 1000)
        assert abs(w.std() - expected) < 0.1 * expected

    def test_mean_near_zero(self, rng):
        w = glorot_normal((200, 200), rng)
        assert abs(w.mean()) < 0.005


class TestHe:
    def test_he_uniform_bounds(self, rng):
        w = he_uniform((64, 16), rng)
        limit = np.sqrt(6.0 / 64)
        assert np.all(np.abs(w) <= limit)

    def test_he_normal_std(self, rng):
        w = he_normal((400, 100), rng)
        expected = np.sqrt(2.0 / 400)
        assert abs(w.std() - expected) < 0.1 * expected


class TestZerosAndUniform:
    def test_zeros(self):
        b = zeros((17,))
        assert b.shape == (17,)
        assert not b.any()
        assert b.dtype == np.float32

    def test_uniform_custom_range(self, rng):
        w = uniform((50, 50), rng, low=-2.0, high=3.0)
        assert w.min() >= -2.0
        assert w.max() < 3.0


class TestRegistry:
    def test_lookup_known(self):
        assert get_initializer("glorot_uniform") is glorot_uniform

    def test_lookup_unknown_raises_with_names(self):
        with pytest.raises(KeyError, match="glorot_uniform"):
            get_initializer("nope")

    def test_1d_shape_supported(self, rng):
        w = glorot_uniform((16,), rng)
        assert w.shape == (16,)

    def test_empty_shape_rejected(self, rng):
        with pytest.raises(ValueError):
            glorot_uniform((), rng)
