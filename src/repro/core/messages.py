"""Halo-exchange message plumbing shared by all policies.

Every layer of every iteration, each worker pair with cut edges exchanges
one message per direction: embeddings rows in the forward pass, embedding
gradient rows in the backward pass. A *policy* decides what actually
travels (raw floats, quantized buckets, selector-compensated payloads...).

Policies are stateful per :class:`ChannelKey` — one logical channel per
(layer, responder, requester) triple — because the compensation algorithms
keep per-channel memories (trend snapshots, error residuals, stale caches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple, Protocol

import numpy as np

__all__ = ["ChannelKey", "ChannelMessage", "ReceiveResult", "ExchangePolicy",
           "RawPolicy"]


class ChannelKey(NamedTuple):
    """Identifies one logical exchange channel."""

    layer: int
    responder: int
    requester: int

    @property
    def pair(self) -> tuple[int, int]:
        """The (responder, requester) worker pair, layer-independent."""
        return (self.responder, self.requester)


@dataclass
class ChannelMessage:
    """One message as produced by a responding worker.

    Attributes:
        payload: Policy-specific content handed to ``receive``.
        nbytes: Exact wire size charged to the traffic meter.
        codec_seconds: Responder-side encode time (before the configured
            codec speedup is applied).
        meta: Free-form extras (e.g. the predicted-selection proportion
            that feeds the Bit-Tuner).
    """

    payload: object
    nbytes: int
    codec_seconds: float = 0.0
    meta: dict = field(default_factory=dict)


@dataclass
class ReceiveResult:
    """Decoded rows plus requester-side decode time."""

    rows: np.ndarray
    codec_seconds: float = 0.0
    meta: dict = field(default_factory=dict)


class ExchangePolicy(Protocol):
    """What a halo-exchange policy must implement.

    ``rows_idx`` supports the sampling trainers: when only a subset of a
    channel's vertices is requested this iteration, it holds their indices
    within the channel's full vertex list so per-row state stays aligned.
    """

    name: str

    def respond(
        self,
        key: ChannelKey,
        rows: np.ndarray,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ChannelMessage: ...

    def receive(
        self,
        key: ChannelKey,
        message: ChannelMessage,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ReceiveResult: ...


# Frame header (16) plus the 8-byte shape word, matching
# repro.cluster.serialize exactly.
_HEADER_BYTES = 24


class RawPolicy:
    """Uncompressed float32 rows — the paper's ``Non-cp`` configuration."""

    name = "raw"

    def respond(
        self,
        key: ChannelKey,
        rows: np.ndarray,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ChannelMessage:
        data = np.ascontiguousarray(rows, dtype=np.float32)
        return ChannelMessage(
            payload=data, nbytes=_HEADER_BYTES + data.nbytes
        )

    def receive(
        self,
        key: ChannelKey,
        message: ChannelMessage,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ReceiveResult:
        return ReceiveResult(rows=message.payload)

    def reset(self) -> None:
        """Raw exchange is stateless; nothing to clear."""
