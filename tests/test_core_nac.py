"""Unit tests for the Neighbor Access Controller exchanges."""

import numpy as np
import pytest

from repro.cluster.engine import ClusterRuntime
from repro.cluster.topology import ClusterSpec
from repro.core.messages import RawPolicy
from repro.core.nac import NeighborAccessController
from repro.core.policies import CompressPolicy
from repro.core.worker import build_worker_states
from repro.graph.normalize import gcn_normalize
from repro.partition.hashing import HashPartitioner


@pytest.fixture
def setup(small_graph):
    normalized = gcn_normalize(small_graph.adjacency)
    partition = HashPartitioner().partition(small_graph.adjacency, 3)
    workers = build_worker_states(small_graph, normalized, partition)
    runtime = ClusterRuntime(ClusterSpec(num_workers=3))
    nac = NeighborAccessController(runtime, workers, codec_speedup=20.0)
    return small_graph, workers, runtime, nac


class TestForwardExchange:
    def test_raw_exchange_delivers_owner_rows(self, setup):
        graph, workers, runtime, nac = setup
        rng = np.random.default_rng(0)
        values = [rng.random((s.num_local, 5)).astype(np.float32)
                  for s in workers]
        halos = nac.exchange(
            layer=1, t=0,
            rows_of=lambda s: values[s.worker_id],
            policy=RawPolicy(), category="fp_embeddings", dim=5,
        )
        for state in workers:
            for owner, slots in state.halo_slots.items():
                owner_rows = workers[owner].serves[state.worker_id]
                np.testing.assert_array_equal(
                    halos[state.worker_id][slots],
                    values[owner][owner_rows],
                )

    def test_traffic_charged_per_channel(self, setup):
        graph, workers, runtime, nac = setup
        values = [np.zeros((s.num_local, 4), dtype=np.float32)
                  for s in workers]
        nac.exchange(
            layer=1, t=0, rows_of=lambda s: values[s.worker_id],
            policy=RawPolicy(), category="fp_embeddings", dim=4,
        )
        assert runtime.meter.epoch_bytes() > 0
        assert "fp_embeddings" in runtime.meter.epoch_category_bytes()

    def test_compressed_exchange_close(self, setup):
        graph, workers, runtime, nac = setup
        rng = np.random.default_rng(1)
        values = [rng.random((s.num_local, 6)).astype(np.float32)
                  for s in workers]
        halos = nac.exchange(
            layer=1, t=0, rows_of=lambda s: values[s.worker_id],
            policy=CompressPolicy(bits=8), category="fp_embeddings", dim=6,
        )
        for state in workers:
            for owner, slots in state.halo_slots.items():
                owner_rows = workers[owner].serves[state.worker_id]
                np.testing.assert_allclose(
                    halos[state.worker_id][slots],
                    values[owner][owner_rows],
                    atol=0.01,
                )

    def test_codec_time_discounted(self, setup):
        graph, workers, runtime, nac = setup
        values = [np.random.default_rng(2).random(
            (s.num_local, 64)).astype(np.float32) for s in workers]
        nac.exchange(
            layer=1, t=0, rows_of=lambda s: values[s.worker_id],
            policy=CompressPolicy(bits=8), category="x", dim=64,
        )
        # Compute was charged, but far less than a full undiscounted
        # Python quantization pass would cost.
        breakdown = runtime.end_epoch()
        assert breakdown.compute_seconds > 0


class TestReverseExchange:
    def test_partials_summed_at_owner(self, setup):
        """Owners receive the exact sum of the per-consumer partials."""
        graph, workers, runtime, nac = setup
        rng = np.random.default_rng(3)
        partials = [rng.random((s.num_halo, 4)).astype(np.float32)
                    for s in workers]
        sums = nac.reverse_exchange(
            layer=2, t=0,
            halo_rows_of=lambda s: partials[s.worker_id],
            policy=RawPolicy(), category="bp_gradients", dim=4,
        )
        # Reference: accumulate manually.
        expected = [np.zeros((s.num_local, 4), dtype=np.float32)
                    for s in workers]
        for consumer in workers:
            for owner, slots in consumer.halo_slots.items():
                rows = workers[owner].serves[consumer.worker_id]
                np.add.at(expected[owner], rows,
                          partials[consumer.worker_id][slots])
        for got, want in zip(sums, expected):
            np.testing.assert_allclose(got, want, atol=1e-5)

    def test_reverse_traffic_charged(self, setup):
        graph, workers, runtime, nac = setup
        partials = [np.ones((s.num_halo, 4), dtype=np.float32)
                    for s in workers]
        runtime.meter.reset_epoch()
        nac.reverse_exchange(
            layer=2, t=0, halo_rows_of=lambda s: partials[s.worker_id],
            policy=RawPolicy(), category="bp_gradients", dim=4,
        )
        assert runtime.meter.epoch_category_bytes().get("bp_gradients", 0) > 0

    def test_forward_and_reverse_same_bytes_for_raw(self, setup):
        """Symmetric plans: the reverse path moves the same row counts."""
        graph, workers, runtime, nac = setup
        values = [np.zeros((s.num_local, 4), dtype=np.float32)
                  for s in workers]
        nac.exchange(layer=1, t=0, rows_of=lambda s: values[s.worker_id],
                     policy=RawPolicy(), category="fwd", dim=4)
        fwd = runtime.meter.epoch_category_bytes()["fwd"]
        partials = [np.zeros((s.num_halo, 4), dtype=np.float32)
                    for s in workers]
        nac.reverse_exchange(layer=1, t=0,
                             halo_rows_of=lambda s: partials[s.worker_id],
                             policy=RawPolicy(), category="rev", dim=4)
        rev = runtime.meter.epoch_category_bytes()["rev"]
        assert fwd == rev


class TestValidation:
    def test_invalid_speedup(self, setup):
        graph, workers, runtime, _ = setup
        with pytest.raises(ValueError):
            NeighborAccessController(runtime, workers, codec_speedup=0)
