"""Unit + property tests for ResEC-BP error feedback."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.quantization import BucketQuantizer
from repro.core.messages import ChannelKey
from repro.core.resec_bp import ResECPolicy

KEY = ChannelKey(layer=2, responder=0, requester=1)


class TestErrorFeedback:
    def test_single_roundtrip_close(self):
        policy = ResECPolicy(bits=8)
        rows = np.random.default_rng(0).standard_normal((10, 4)).astype(np.float32)
        result = policy.receive(KEY, policy.respond(KEY, rows, t=0), t=0)
        span = rows.max() - rows.min()
        assert np.abs(result.rows - rows).max() <= span / 512 + 1e-5

    def test_residual_carries_into_next_iteration(self):
        """Eq. 11/12: what was lost at t is added back at t+1, so the
        *cumulative* delivered sum tracks the cumulative true sum."""
        policy = ResECPolicy(bits=2)
        rng = np.random.default_rng(1)
        true_sum = np.zeros((6, 3), dtype=np.float64)
        sent_sum = np.zeros((6, 3), dtype=np.float64)
        for t in range(30):
            rows = rng.standard_normal((6, 3)).astype(np.float32)
            result = policy.receive(KEY, policy.respond(KEY, rows, t), t)
            true_sum += rows
            sent_sum += result.rows
        # Telescoping: |sum difference| == |last residual|, bounded by
        # the one-step quantization error, NOT growing with T.
        residual = policy.residual_norm(KEY)
        gap = np.linalg.norm(true_sum - sent_sum)
        assert gap == pytest.approx(residual, rel=1e-3)

    def test_without_feedback_errors_accumulate(self):
        """Plain quantization drifts; error feedback does not."""
        rng = np.random.default_rng(2)
        quantizer = BucketQuantizer(1)
        rows_stream = [
            rng.standard_normal((8, 4)).astype(np.float32) for _ in range(40)
        ]

        policy = ResECPolicy(bits=1)
        fed_gap = np.zeros((8, 4), dtype=np.float64)
        plain_gap = np.zeros((8, 4), dtype=np.float64)
        for t, rows in enumerate(rows_stream):
            delivered = policy.receive(
                KEY, policy.respond(KEY, rows, t), t
            ).rows
            fed_gap += rows - delivered
            plain_gap += rows - quantizer.quantize(rows)
        assert np.linalg.norm(fed_gap) < np.linalg.norm(plain_gap)

    def test_constant_gradient_converges_in_mean(self):
        """For a constant input the delivered average approaches the truth."""
        policy = ResECPolicy(bits=1)
        rows = np.full((4, 4), 0.37, dtype=np.float32)
        delivered = np.zeros_like(rows, dtype=np.float64)
        steps = 64
        for t in range(steps):
            delivered += policy.receive(
                KEY, policy.respond(KEY, rows, t), t
            ).rows
        np.testing.assert_allclose(delivered / steps, 0.37, atol=0.02)

    def test_channels_independent(self):
        policy = ResECPolicy(bits=2)
        other = ChannelKey(layer=3, responder=0, requester=1)
        rows = np.ones((4, 2), dtype=np.float32)
        policy.respond(KEY, rows, t=0)
        assert policy.residual_norm(other) == 0.0

    def test_reset(self):
        policy = ResECPolicy(bits=2)
        rows = np.random.default_rng(3).random((4, 2)).astype(np.float32)
        policy.respond(KEY, rows, t=0)
        policy.reset()
        assert policy.residual_norm(KEY) == 0.0


class TestSampledMode:
    def test_prime_then_subset_respond(self):
        policy = ResECPolicy(bits=4)
        policy.prime_residual(KEY, num_rows=10, dim=3)
        rng = np.random.default_rng(4)
        idx = np.array([1, 4, 7])
        rows = rng.standard_normal((3, 3)).astype(np.float32)
        result = policy.receive(
            KEY, policy.respond(KEY, rows, t=0, rows_idx=idx), t=0,
            rows_idx=idx,
        )
        assert result.rows.shape == (3, 3)

    def test_unprimed_subset_raises(self):
        policy = ResECPolicy(bits=4)
        with pytest.raises(RuntimeError, match="prime_residual"):
            policy.respond(
                KEY, np.zeros((2, 3), dtype=np.float32), t=0,
                rows_idx=np.array([0, 1]),
            )

    def test_subset_residual_rows_updated_only(self):
        policy = ResECPolicy(bits=1)
        policy.prime_residual(KEY, num_rows=6, dim=2)
        idx = np.array([0, 1])
        rows = np.full((2, 2), 0.9, dtype=np.float32)
        policy.respond(KEY, rows, t=0, rows_idx=idx)
        residual = policy._residual[KEY]
        assert residual[2:].sum() == 0.0


@given(
    bits=st.sampled_from([1, 2, 4]),
    steps=st.integers(5, 25),
    seed=st.integers(0, 1000),
)
@settings(max_examples=25, deadline=None)
def test_property_telescoping_gap_equals_residual(bits, steps, seed):
    """Invariant: sum(true) - sum(delivered) == current residual, exactly
    (up to float32 accumulation)."""
    policy = ResECPolicy(bits=bits)
    key = ChannelKey(layer=2, responder=0, requester=1)
    rng = np.random.default_rng(seed)
    gap = np.zeros((5, 3), dtype=np.float64)
    for t in range(steps):
        rows = rng.standard_normal((5, 3)).astype(np.float32)
        delivered = policy.receive(
            key, policy.respond(key, rows, t), t
        ).rows
        gap += rows.astype(np.float64) - delivered.astype(np.float64)
    assert np.linalg.norm(gap) == pytest.approx(
        policy.residual_norm(key), rel=1e-2, abs=1e-3
    )
