"""Table IV — training time per epoch (s), all systems x datasets x layers.

Rows mirror the paper's table: standalone DGL/PyG, non-sampling
distributed systems (DistGNN, EC-Graph), then sampling-based systems
(DistDGL, AGL, AliGraph-FG, EC-Graph-S). Epoch time is the modelled
wall-clock: bottleneck worker compute + bottleneck link communication
under Gigabit Ethernet (see DESIGN.md section 2).

Expected shape: on the small citation graphs the standalone systems win
(distributed overheads dominate — the paper observes the same);
on the larger/high-degree graphs EC-Graph beats DistGNN and Non-cp, and
EC-Graph-S beats the other sampling systems.
"""

from __future__ import annotations

from _helpers import HIDDEN, bench_graph, dataset_header, run_once

from repro.analysis.reporting import format_table
from repro.baselines import run_system

DATASETS = ("cora", "pubmed", "reddit", "ogbn-products")
LAYER_SWEEP = (2, 3)
EPOCHS = 4
WORKERS = 6

FULL_BATCH_SYSTEMS = ("dgl", "pyg", "distgnn", "ecgraph")
SAMPLING_SYSTEMS = ("distdgl", "agl", "aligraph", "ecgraph_s")


def _experiment():
    table = {}
    for dataset in DATASETS:
        graph = bench_graph(dataset)
        for system in FULL_BATCH_SYSTEMS + SAMPLING_SYSTEMS:
            for layers in LAYER_SWEEP:
                run = run_system(
                    system, graph, num_layers=layers,
                    hidden_dim=HIDDEN[dataset], num_workers=WORKERS,
                    num_epochs=EPOCHS,
                )
                table[(system, dataset, layers)] = run.avg_epoch_seconds()
    return table


def test_table4_epoch_time(benchmark):
    table = run_once(benchmark, _experiment)
    print()
    for dataset in DATASETS:
        print(dataset_header(dataset))
    for title, systems in (
        ("Table IV (full-batch / non-sampling)", FULL_BATCH_SYSTEMS),
        ("Table IV (sampling-based)", SAMPLING_SYSTEMS),
    ):
        headers = ["system"] + [
            f"{d}/{layers}L" for d in DATASETS for layers in LAYER_SWEEP
        ]
        rows = []
        for system in systems:
            row = [system]
            for dataset in DATASETS:
                for layers in LAYER_SWEEP:
                    row.append(f"{table[(system, dataset, layers)]:.4f}")
            rows.append(row)
        print()
        print(format_table(headers, rows, title=title))

    # Shape assertions from the paper:
    # 1. Standalone beats distributed on the small citation graphs.
    assert table[("dgl", "cora", 2)] < table[("ecgraph", "cora", 2)]
    # 2. EC-Graph beats Non-cp-style systems on the larger graphs:
    #    its epoch is at most DistGNN-like (paper: 1.10-1.48x better).
    for dataset in ("reddit", "ogbn-products"):
        assert table[("ecgraph", dataset, 2)] < (
            1.3 * table[("distgnn", dataset, 2)]
        )
    # 3. EC-Graph-S beats DistDGL (online-sampling overhead) everywhere.
    for dataset in ("reddit", "ogbn-products"):
        assert table[("ecgraph_s", dataset, 2)] < table[("distdgl", dataset, 2)]
    # 4. Epoch time grows with layer count for the distributed systems.
    for system in ("ecgraph", "distgnn"):
        assert table[(system, "reddit", 3)] > table[(system, "reddit", 2)]
