"""Graph partitioning: Hash (the paper's default), streaming BFS/LDG, a
METIS-like multilevel edge-cut partitioner and recursive spectral
bisection, plus quality statistics.
"""

from repro.partition.base import Partition, Partitioner
from repro.partition.bfs import BFSPartitioner
from repro.partition.hashing import HashPartitioner
from repro.partition.metis_like import MetisLikePartitioner
from repro.partition.spectral import SpectralPartitioner
from repro.partition.stats import (
    PartitionStats,
    partition_stats,
    remote_neighbor_lists,
)

__all__ = [
    "Partition",
    "Partitioner",
    "BFSPartitioner",
    "HashPartitioner",
    "MetisLikePartitioner",
    "SpectralPartitioner",
    "PartitionStats",
    "partition_stats",
    "remote_neighbor_lists",
    "make_partitioner",
]


def make_partitioner(name: str, seed: int = 0):
    """Build a partitioner by name (hash, bfs, metis or spectral)."""
    registry = {
        "hash": lambda: HashPartitioner(),
        "bfs": lambda: BFSPartitioner(seed=seed),
        "metis": lambda: MetisLikePartitioner(seed=seed),
        "spectral": lambda: SpectralPartitioner(seed=seed),
    }
    try:
        return registry[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown partitioner {name!r}; known: {known}") from None
