"""End-to-end integration scenarios spanning multiple subsystems.

Each test exercises a realistic user journey through the public API —
the flows the examples demonstrate, asserted.
"""

import numpy as np

from repro import ECGraphConfig, train_ecgraph
from repro.analysis import convergence_target, export_json, load_json, summarize
from repro.baselines import run_system
from repro.cluster import ClusterSpec, NetworkModel
from repro.core import ECGraphTrainer, ModelConfig
from repro.core.checkpoint import restore_trainer, save_checkpoint
from repro.graph import load_dataset


class TestQuickstartJourney:
    def test_ecgraph_saves_traffic_at_matching_accuracy(self, medium_graph):
        ec = train_ecgraph(medium_graph, num_workers=4, num_epochs=40,
                           hidden_dim=8, name="ec")
        noncp = train_ecgraph(medium_graph, num_workers=4, num_epochs=40,
                              hidden_dim=8,
                              config=ECGraphConfig().as_non_cp(),
                              name="noncp")
        assert ec.total_bytes() < 0.7 * noncp.total_bytes()
        assert ec.final_test_accuracy >= noncp.final_test_accuracy - 0.06

    def test_dataset_to_summary_pipeline(self):
        graph = load_dataset("pubmed", profile="tiny", seed=1)
        runs = [
            run_system(system, graph, num_workers=2, num_epochs=15,
                       hidden_dim=8)
            for system in ("ecgraph", "noncp")
        ]
        target = convergence_target(runs)
        summaries = [summarize(run, target) for run in runs]
        assert all(s.best_test_accuracy > 0.4 for s in summaries)


class TestCheckpointJourney:
    def test_train_checkpoint_resume_export(self, medium_graph, tmp_path):
        trainer = ECGraphTrainer(
            medium_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=3), ECGraphConfig(seed=4),
        )
        first = trainer.train(10)
        save_checkpoint(trainer, tmp_path / "mid.npz", epoch=10)

        resumed = ECGraphTrainer(
            medium_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=3), ECGraphConfig(seed=4),
        )
        epoch = restore_trainer(resumed, tmp_path / "mid.npz")
        more = [resumed.run_epoch(t) for t in range(epoch, epoch + 5)]
        assert more[-1].test_accuracy >= first.epochs[0].test_accuracy

        export_json([first], tmp_path / "runs.json")
        assert load_json(tmp_path / "runs.json")[0]["epochs"]


class TestNetworkSensitivityJourney:
    def test_slow_network_amplifies_compression_win(self, medium_graph):
        def epoch_time(config, bandwidth):
            spec = ClusterSpec(
                num_workers=3,
                network=NetworkModel(bandwidth_bytes_per_s=bandwidth,
                                     latency_s=1e-4),
            )
            trainer = ECGraphTrainer(
                medium_graph, ModelConfig(num_layers=2, hidden_dim=8),
                spec, config,
            )
            return trainer.train(3).avg_epoch_seconds()

        raw = ECGraphConfig(fp_mode="raw", bp_mode="raw")
        ec = ECGraphConfig()
        slow_ratio = epoch_time(raw, 1e6) / epoch_time(ec, 1e6)
        fast_ratio = epoch_time(raw, 1e10) / epoch_time(ec, 1e10)
        assert slow_ratio > fast_ratio

    def test_traffic_independent_of_network_model(self, medium_graph):
        """Bytes moved depend on the algorithm, not on modelled speeds."""
        totals = []
        for bandwidth in (1e6, 1e10):
            spec = ClusterSpec(
                num_workers=3,
                network=NetworkModel(bandwidth_bytes_per_s=bandwidth),
            )
            trainer = ECGraphTrainer(
                medium_graph, ModelConfig(num_layers=2, hidden_dim=8),
                spec, ECGraphConfig(seed=5),
            )
            totals.append(trainer.train(4).total_bytes())
        assert totals[0] == totals[1]


class TestDeterminism:
    def test_identical_runs_identical_results(self, medium_graph):
        runs = []
        for _ in range(2):
            run = train_ecgraph(medium_graph, num_workers=3, num_epochs=8,
                                hidden_dim=8,
                                config=ECGraphConfig(seed=11))
            runs.append(run)
        a, b = runs
        assert [e.loss for e in a.epochs] == [e.loss for e in b.epochs]
        assert a.total_bytes() == b.total_bytes()
        assert a.final_test_accuracy == b.final_test_accuracy

    def test_different_seeds_different_trajectories(self, medium_graph):
        losses = []
        for seed in (1, 2):
            run = train_ecgraph(medium_graph, num_workers=3, num_epochs=5,
                                hidden_dim=8,
                                config=ECGraphConfig(seed=seed))
            losses.append([e.loss for e in run.epochs])
        assert losses[0] != losses[1]


class TestRMATStress:
    def test_hub_heavy_graph_full_pipeline(self):
        from repro.graph import RMATSpec, generate_rmat_graph

        graph = generate_rmat_graph(RMATSpec(scale=8, edge_factor=6, seed=2))
        run = train_ecgraph(graph, num_workers=4, num_epochs=5, hidden_dim=4)
        assert np.isfinite(run.epochs[-1].loss)
        assert run.total_bytes() > 0
