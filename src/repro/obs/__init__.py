"""Observability: tracing, metrics, health, stage profile, traffic ledger.

The subsystem has five collectors behind one switch
(:class:`~repro.obs.config.ObsConfig`, off by default):

* :class:`~repro.obs.registry.MetricsRegistry` — labelled counters /
  gauges / histograms with per-epoch snapshot/reset semantics;
* :class:`~repro.obs.tracing.SpanTracer` — nested ``perf_counter``
  spans (``epoch > halo_plan/forward/backward/optimize > layer >
  halo_exchange/encode/decode/kernel/server_apply``), exportable as
  JSONL or Chrome trace via :mod:`repro.obs.export`;
* :class:`~repro.obs.health.CompressionHealthMonitor` — ReqEC-FP
  candidate-win fractions, Bit-Tuner width trajectory, and ResEC-BP
  residual norms checked against the Theorem 1 bound;
* :class:`~repro.obs.profiler.StageProfiler` — per-epoch stage timeline
  (wall + modelled time, straggler and bottleneck-link attribution);
* :class:`~repro.obs.ledger.ChannelLedger` — per-channel wire-byte /
  retry / degradation ledger reconciling byte-exact against the
  :class:`~repro.cluster.network.TrafficMeter`.

:mod:`repro.obs.report` renders one self-contained epoch report
(markdown or HTML) from a finished run (``repro report`` on the CLI).
See ``docs/observability.md`` for usage.
"""

from repro.obs.config import OBS_DISABLED, ObsConfig
from repro.obs.export import (
    metrics_to_jsonl,
    metrics_to_prometheus,
    read_jsonl,
    span_to_record,
    spans_to_chrome,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics_jsonl,
    write_prometheus,
)
from repro.obs.health import CompressionHealthMonitor, HealthReport, ResidualCheck
from repro.obs.ledger import (
    NULL_LEDGER,
    ChannelLedger,
    ChannelRecord,
    LedgerSnapshot,
    NullChannelLedger,
    direction_of_category,
)
from repro.obs.profiler import (
    ENGINE_STAGES,
    NULL_PROFILER,
    EpochTimeline,
    NullStageProfiler,
    StageProfile,
    StageProfiler,
    StageSample,
)
from repro.obs.registry import HistogramStat, MetricsRegistry, MetricsSnapshot
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, TelemetryReport
from repro.obs.tracing import NullTracer, Span, SpanTracer, monotonic_now

__all__ = [
    "OBS_DISABLED",
    "ObsConfig",
    "metrics_to_jsonl",
    "metrics_to_prometheus",
    "read_jsonl",
    "span_to_record",
    "spans_to_chrome",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_jsonl",
    "write_prometheus",
    "CompressionHealthMonitor",
    "HealthReport",
    "ResidualCheck",
    "NULL_LEDGER",
    "ChannelLedger",
    "ChannelRecord",
    "LedgerSnapshot",
    "NullChannelLedger",
    "direction_of_category",
    "ENGINE_STAGES",
    "NULL_PROFILER",
    "EpochTimeline",
    "NullStageProfiler",
    "StageProfile",
    "StageProfiler",
    "StageSample",
    "HistogramStat",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_TELEMETRY",
    "Telemetry",
    "TelemetryReport",
    "NullTracer",
    "Span",
    "SpanTracer",
    "monotonic_now",
]
