"""Integration tests for the baseline systems."""

import numpy as np
import pytest

from repro.baselines import (
    MLCenteredTrainer,
    capped_khop_subgraph,
    default_fanouts,
    run_system,
    system_names,
)
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig


class TestRegistry:
    def test_all_paper_systems_present(self):
        names = system_names()
        for system in ("dgl", "pyg", "distgnn", "ecgraph", "distdgl",
                       "agl", "aligraph", "ecgraph_s"):
            assert system in names

    def test_unknown_system(self, small_graph):
        with pytest.raises(KeyError, match="ecgraph"):
            run_system("spark", small_graph)

    def test_default_fanouts_match_paper_shapes(self):
        assert default_fanouts(2) == [10, 5]
        assert default_fanouts(3) == [5, 2, 2]
        assert default_fanouts(4) == [5, 5, 1, 1]
        assert default_fanouts(5) == [5] * 5


@pytest.mark.parametrize("system", system_names())
def test_every_system_trains(system, medium_graph):
    run = run_system(system, medium_graph, num_workers=3, num_epochs=15,
                     hidden_dim=8)
    assert run.num_epochs > 0
    assert run.best_test_accuracy() > 0.3
    assert run.name == system


class TestStandalone:
    def test_no_worker_traffic(self, small_graph):
        run = run_system("dgl", small_graph, num_epochs=5)
        assert run.total_bytes() == 0

    def test_dgl_and_pyg_same_accuracy(self, small_graph):
        dgl = run_system("dgl", small_graph, num_epochs=20)
        pyg = run_system("pyg", small_graph, num_epochs=20)
        assert dgl.epochs[-1].loss == pytest.approx(
            pyg.epochs[-1].loss, rel=1e-3, abs=1e-5
        )


class TestDistGNN:
    def test_less_traffic_than_noncp(self, medium_graph):
        distgnn = run_system("distgnn", medium_graph, num_workers=3,
                             num_epochs=10)
        noncp = run_system("noncp", medium_graph, num_workers=3,
                           num_epochs=10)
        assert distgnn.total_bytes() < noncp.total_bytes()

    def test_converges_slower_than_noncp(self, medium_graph):
        """The paper: DistGNN needs more iterations because aggregates
        are stale. Compare epochs to reach a shared target."""
        distgnn = run_system("distgnn", medium_graph, num_workers=3,
                             num_epochs=60, hidden_dim=8)
        noncp = run_system("noncp", medium_graph, num_workers=3,
                           num_epochs=60, hidden_dim=8)
        target = 0.95 * max(
            distgnn.best_test_accuracy(), noncp.best_test_accuracy()
        )

        def epochs_to(run):
            for result in run.epochs:
                if result.test_accuracy >= target:
                    return result.epoch
            return 10_000

        assert epochs_to(noncp) <= epochs_to(distgnn)


class TestMLCentered:
    def test_capped_subgraph_respects_fanout(self, medium_graph):
        rng = np.random.default_rng(0)
        targets = np.arange(10)
        vertices, edges = capped_khop_subgraph(
            medium_graph.adjacency, targets, [3, 3], rng
        )
        # Each target keeps at most 3 in-edges at hop 1.
        for v in targets:
            assert (edges[:, 0] == v).sum() <= 3
        assert set(targets.tolist()) <= set(vertices.tolist())

    def test_cached_size_grows_with_hops(self, medium_graph):
        rng = np.random.default_rng(0)
        targets = np.arange(10)
        small, _ = capped_khop_subgraph(
            medium_graph.adjacency, targets, [5], rng
        )
        large, _ = capped_khop_subgraph(
            medium_graph.adjacency, targets, [5, 5], rng
        )
        assert large.size >= small.size

    def test_per_epoch_traffic_is_params_only(self, medium_graph):
        run = run_system("aligraph", medium_graph, num_workers=3,
                         num_epochs=5)
        for epoch in run.epochs:
            categories = set(epoch.breakdown.category_bytes)
            assert categories <= {"param_pull", "param_push"}

    def test_preprocessing_charged(self, medium_graph):
        run = run_system("aligraph", medium_graph, num_workers=3,
                         num_epochs=3)
        assert run.preprocessing_seconds > 0

    def test_cached_counts_cover_targets(self, medium_graph):
        trainer = MLCenteredTrainer(
            medium_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=3), cache_fanouts=[5, 5],
            config=ECGraphConfig(),
        )
        counts = trainer.cached_vertex_counts()
        assert sum(counts) >= medium_graph.num_vertices  # redundancy

    def test_redundancy_grows_with_degree_cap(self, medium_graph):
        small_cap = MLCenteredTrainer(
            medium_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=3), cache_fanouts=[2, 2],
            config=ECGraphConfig(),
        ).cached_vertex_counts()
        big_cap = MLCenteredTrainer(
            medium_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=3), cache_fanouts=[20, 20],
            config=ECGraphConfig(),
        ).cached_vertex_counts()
        assert sum(big_cap) > sum(small_cap)

    def test_fanout_length_validated(self, medium_graph):
        with pytest.raises(ValueError):
            MLCenteredTrainer(
                medium_graph, ModelConfig(num_layers=2),
                ClusterSpec(num_workers=2), cache_fanouts=[5],
            )

    def test_agl_accuracy_below_full_batch(self, medium_graph):
        """Sampled, truncated caches cost accuracy vs exact training."""
        agl = run_system("agl", medium_graph, num_workers=3,
                         num_epochs=50, fanouts=[3, 2])
        noncp = run_system("noncp", medium_graph, num_workers=3,
                           num_epochs=50)
        assert agl.best_test_accuracy() <= noncp.best_test_accuracy() + 0.02


class TestECGraphVsBaselines:
    def test_ecgraph_less_traffic_than_noncp(self, medium_graph):
        ec = run_system("ecgraph", medium_graph, num_workers=3, num_epochs=15)
        noncp = run_system("noncp", medium_graph, num_workers=3, num_epochs=15)
        assert ec.total_bytes() < noncp.total_bytes()

    def test_ecgraph_s_less_traffic_than_distdgl(self, medium_graph):
        ec_s = run_system("ecgraph_s", medium_graph, num_workers=3,
                          num_epochs=10)
        distdgl = run_system("distdgl", medium_graph, num_workers=3,
                             num_epochs=10)
        assert ec_s.total_bytes() < distdgl.total_bytes()

    def test_ecgraph_matches_noncp_accuracy(self, medium_graph):
        ec = run_system("ecgraph", medium_graph, num_workers=3, num_epochs=50)
        noncp = run_system("noncp", medium_graph, num_workers=3, num_epochs=50)
        assert ec.best_test_accuracy() >= noncp.best_test_accuracy() - 0.05
