"""Unit tests for the three partitioners."""

import numpy as np
import pytest

from repro.graph.generators import GraphSpec, generate_graph
from repro.partition import (
    BFSPartitioner,
    HashPartitioner,
    MetisLikePartitioner,
    SpectralPartitioner,
    Partition,
    make_partitioner,
    partition_stats,
)


@pytest.fixture
def community_graph():
    """Two dense planted communities: locality-aware partitioners should
    cut far fewer edges than hash."""
    spec = GraphSpec(
        name="two-communities",
        num_vertices=200,
        avg_degree=10.0,
        feature_dim=4,
        num_classes=2,
        homophily=0.97,
        seed=3,
    )
    return generate_graph(spec).adjacency


ALL_PARTITIONERS = [
    HashPartitioner(),
    BFSPartitioner(seed=0),
    MetisLikePartitioner(seed=0),
    SpectralPartitioner(seed=0),
]


@pytest.mark.parametrize("partitioner", ALL_PARTITIONERS,
                         ids=lambda p: p.name)
class TestInvariants:
    def test_every_vertex_assigned(self, partitioner, community_graph):
        partition = partitioner.partition(community_graph, 4)
        assert partition.num_vertices == community_graph.num_vertices
        assert (partition.assignment >= 0).all()
        assert (partition.assignment < 4).all()

    def test_parts_cover_disjointly(self, partitioner, community_graph):
        partition = partitioner.partition(community_graph, 3)
        seen = np.concatenate(
            [partition.part_vertices(p) for p in range(3)]
        )
        assert len(seen) == community_graph.num_vertices
        assert len(np.unique(seen)) == community_graph.num_vertices

    def test_reasonable_balance(self, partitioner, community_graph):
        partition = partitioner.partition(community_graph, 4)
        stats = partition_stats(community_graph, partition)
        assert stats.balance < 1.6

    def test_single_part(self, partitioner, community_graph):
        partition = partitioner.partition(community_graph, 1)
        assert (partition.assignment == 0).all()

    def test_records_time(self, partitioner, community_graph):
        partition = partitioner.partition(community_graph, 2)
        assert partition.seconds >= 0.0


class TestHash:
    def test_round_robin_without_salt(self, community_graph):
        partition = HashPartitioner().partition(community_graph, 3)
        np.testing.assert_array_equal(
            partition.assignment[:6], [0, 1, 2, 0, 1, 2]
        )

    def test_salt_changes_assignment(self, community_graph):
        a = HashPartitioner(salt=0).partition(community_graph, 3)
        b = HashPartitioner(salt=7).partition(community_graph, 3)
        assert not np.array_equal(a.assignment, b.assignment)

    def test_perfect_balance(self, community_graph):
        partition = HashPartitioner().partition(community_graph, 4)
        sizes = partition.part_sizes()
        assert sizes.max() - sizes.min() <= 1


class TestQuality:
    def test_metis_beats_hash_on_communities(self, community_graph):
        hash_stats = partition_stats(
            community_graph, HashPartitioner().partition(community_graph, 2)
        )
        metis_stats = partition_stats(
            community_graph,
            MetisLikePartitioner(seed=0).partition(community_graph, 2),
        )
        assert metis_stats.edge_cut < hash_stats.edge_cut

    def test_bfs_beats_hash_on_communities(self, community_graph):
        hash_stats = partition_stats(
            community_graph, HashPartitioner().partition(community_graph, 2)
        )
        bfs_stats = partition_stats(
            community_graph, BFSPartitioner(seed=0).partition(community_graph, 2)
        )
        assert bfs_stats.edge_cut < hash_stats.edge_cut

    def test_spectral_beats_hash_on_communities(self, community_graph):
        hash_stats = partition_stats(
            community_graph, HashPartitioner().partition(community_graph, 2)
        )
        spectral_stats = partition_stats(
            community_graph,
            SpectralPartitioner(seed=0).partition(community_graph, 2),
        )
        assert spectral_stats.edge_cut < hash_stats.edge_cut

    def test_spectral_odd_part_count(self, community_graph):
        partition = SpectralPartitioner(seed=0).partition(community_graph, 3)
        sizes = partition.part_sizes()
        assert sizes.min() > 0
        assert sizes.max() / sizes.min() < 3.0


class TestPartitionObject:
    def test_out_of_range_part_id_rejected(self):
        with pytest.raises(ValueError):
            Partition(np.array([0, 3]), num_parts=2)

    def test_part_vertices_bounds(self):
        partition = Partition(np.array([0, 1, 0]), num_parts=2)
        with pytest.raises(IndexError):
            partition.part_vertices(5)

    def test_owner(self):
        partition = Partition(np.array([0, 1, 0]), num_parts=2)
        assert partition.owner(1) == 1


class TestFactory:
    @pytest.mark.parametrize("name", ["hash", "bfs", "metis", "spectral"])
    def test_make(self, name):
        assert make_partitioner(name).name == name

    def test_unknown(self):
        with pytest.raises(KeyError, match="metis"):
            make_partitioner("random")
