"""Benchmark-suite configuration.

``pytest benchmarks/ --benchmark-only`` runs every table/figure
regeneration; each test prints its rows/series (use ``-s`` to see them
live; they are also captured into the bench report).
"""

import sys
from pathlib import Path

# Allow `import _helpers` from any benchmark module regardless of cwd.
sys.path.insert(0, str(Path(__file__).parent))
