"""Spectral partitioning by recursive Fiedler-vector bisection.

A third quality-partitioning option next to the METIS-like multilevel
scheme: split on the sign/median of the Fiedler vector (the eigenvector
of the graph Laplacian's second-smallest eigenvalue), recursing until
the requested part count is reached. Spectral cuts are often excellent
on community-structured graphs but cost an eigensolve per bisection,
which is exactly the partitioning-time/quality trade-off the paper's
Fig. 11 discussion is about.

Non-power-of-two part counts are handled by splitting proportionally:
a region assigned ``k`` parts is bisected into ``ceil(k/2)`` and
``floor(k/2)`` shares at the matching quantile of the Fiedler vector.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.linalg import eigsh

from repro.graph.csr import CSRGraph
from repro.graph.store.base import GraphStore
from repro.partition.base import Partition

__all__ = ["SpectralPartitioner"]


class SpectralPartitioner:
    """Recursive spectral bisection."""

    name = "spectral"

    def __init__(self, seed: int = 0, dense_below: int = 128):
        """Args:
        seed: Seed for the eigensolver's start vector.
        dense_below: Regions smaller than this use a dense eigensolve
            (sparse Lanczos is unreliable on tiny matrices).
        """
        self.seed = seed
        self.dense_below = max(dense_below, 8)

    def partition(
        self, graph: CSRGraph | GraphStore, num_parts: int
    ) -> Partition:
        start = time.perf_counter()
        if isinstance(graph, GraphStore):
            # Eigensolves need the whole operator; materialize up front
            # (spectral cuts are a small-graph quality option anyway).
            graph = graph.to_csr()
        n = graph.num_vertices
        assignment = np.zeros(n, dtype=np.int64)
        if num_parts > 1:
            adjacency = graph.to_scipy()
            # Symmetrize: spectral bisection needs an undirected view.
            adjacency = adjacency.maximum(adjacency.T)
            self._bisect(
                adjacency,
                np.arange(n, dtype=np.int64),
                assignment,
                first_part=0,
                num_parts=num_parts,
            )
        return Partition(
            assignment=assignment,
            num_parts=num_parts,
            method=self.name,
            seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def _bisect(
        self,
        adjacency: csr_matrix,
        vertices: np.ndarray,
        assignment: np.ndarray,
        first_part: int,
        num_parts: int,
    ) -> None:
        """Assign ``vertices`` the parts [first_part, first_part+num_parts)."""
        if num_parts == 1 or vertices.size <= num_parts:
            # Too few vertices to split spectrally: round-robin the rest.
            assignment[vertices] = first_part + (
                np.arange(vertices.size) % num_parts
            )
            return

        left_parts = (num_parts + 1) // 2
        fraction = left_parts / num_parts
        sub = adjacency[vertices][:, vertices]
        fiedler = self._fiedler_vector(sub)

        threshold = np.quantile(fiedler, fraction)
        left_mask = fiedler <= threshold
        # Guard against degenerate splits (constant Fiedler vector).
        if left_mask.all() or not left_mask.any():
            order = np.argsort(fiedler, kind="stable")
            left_mask = np.zeros(vertices.size, dtype=bool)
            left_mask[order[: int(vertices.size * fraction)]] = True

        self._bisect(adjacency, vertices[left_mask], assignment,
                     first_part, left_parts)
        self._bisect(adjacency, vertices[~left_mask], assignment,
                     first_part + left_parts, num_parts - left_parts)

    def _fiedler_vector(self, adjacency: csr_matrix) -> np.ndarray:
        """Second-smallest Laplacian eigenvector of one region."""
        n = adjacency.shape[0]
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        if n < self.dense_below:
            laplacian = np.diag(degrees) - adjacency.toarray()
            _, vectors = np.linalg.eigh(laplacian)
            return vectors[:, 1]
        from scipy.sparse import diags

        laplacian = diags(degrees) - adjacency
        rng = np.random.default_rng(self.seed)
        v0 = rng.standard_normal(n)
        try:
            _, vectors = eigsh(laplacian, k=2, sigma=-1e-6, which="LM",
                               v0=v0, maxiter=2000)
            return vectors[:, 1]
        except Exception:
            # Lanczos can fail on disconnected regions; fall back to a
            # dense solve (regions reaching here are still moderate).
            laplacian = np.diag(degrees) - adjacency.toarray()
            _, vectors = np.linalg.eigh(laplacian)
            return vectors[:, 1]
