"""Robustness / edge-case tests across the training stack.

Degenerate inputs a production system must survive: isolated vertices,
disconnected components, workers with empty halos, single-class labels
in a worker's shard, extreme bit widths, graphs smaller than the
cluster.
"""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer
from repro.graph.attributed import AttributedGraph
from repro.graph.csr import from_edge_list
from repro.graph.generators import GraphSpec, generate_graph


def _graph_from_edges(edges, n, classes=2, seed=0, train_frac=0.5):
    rng = np.random.default_rng(seed)
    adjacency = from_edge_list(edges, n, deduplicate=True)
    labels = rng.integers(0, classes, n)
    labels[:classes] = np.arange(classes)
    features = rng.standard_normal((n, 6)).astype(np.float32)
    features += labels[:, None] * 0.5
    masks = np.zeros((3, n), dtype=bool)
    order = rng.permutation(n)
    cut1 = max(int(n * train_frac), classes)
    cut2 = cut1 + max(n // 5, 1)
    masks[0, order[:cut1]] = True
    masks[1, order[cut1:cut2]] = True
    masks[2, order[cut2:]] = True
    return AttributedGraph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        train_mask=masks[0],
        val_mask=masks[1],
        test_mask=masks[2],
        num_classes=classes,
        name="edge-case",
    )


def _train(graph, workers=2, epochs=5, **config_overrides):
    config = ECGraphConfig(**config_overrides)
    trainer = ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=4),
        ClusterSpec(num_workers=workers), config,
    )
    return trainer.train(epochs)


class TestDegenerateGraphs:
    def test_isolated_vertices_survive(self):
        # Vertices 4..7 have no edges at all.
        edges = [(0, 1), (1, 0), (2, 3), (3, 2)]
        graph = _graph_from_edges(edges, 8)
        run = _train(graph)
        assert np.isfinite(run.epochs[-1].loss)

    def test_disconnected_components(self):
        edges = []
        for base in (0, 5):
            for i in range(4):
                edges.append((base + i, base + i + 1))
                edges.append((base + i + 1, base + i))
        graph = _graph_from_edges(edges, 10)
        run = _train(graph, workers=2)
        assert np.isfinite(run.epochs[-1].loss)

    def test_worker_with_no_remote_neighbors(self):
        # Two cliques split exactly along a 2-way round-robin... force
        # the situation by making component {0,1} vs {2,3} and hash
        # partitioning over 2 workers: worker 0 gets {0, 2}, worker 1
        # gets {1, 3}; add a variant where a worker's halo is empty by
        # using self-contained even/odd components.
        edges = [(0, 2), (2, 0), (1, 3), (3, 1)]
        graph = _graph_from_edges(edges, 4)
        run = _train(graph, workers=2)
        assert np.isfinite(run.epochs[-1].loss)

    def test_star_graph_hub(self):
        # One hub connected to everyone: extreme degree imbalance.
        n = 20
        edges = [(0, i) for i in range(1, n)] + [(i, 0) for i in range(1, n)]
        graph = _graph_from_edges(edges, n)
        run = _train(graph, workers=3)
        assert np.isfinite(run.epochs[-1].loss)

    def test_graph_smaller_than_feature_dim(self):
        spec = GraphSpec(name="t", num_vertices=10, avg_degree=2.0,
                         feature_dim=64, num_classes=2, train=4, val=2,
                         test=2, seed=0)
        run = _train(generate_graph(spec), workers=2)
        assert np.isfinite(run.epochs[-1].loss)


class TestDegenerateLabels:
    def test_worker_shard_with_no_train_vertices(self):
        # All train vertices on even ids -> with 2-way round robin the
        # odd worker trains nothing but must still participate.
        edges = [(i, (i + 1) % 8) for i in range(8)]
        edges += [((i + 1) % 8, i) for i in range(8)]
        graph = _graph_from_edges(edges, 8)
        graph.train_mask[:] = False
        graph.train_mask[[0, 2, 4]] = True
        run = _train(graph, workers=2)
        assert np.isfinite(run.epochs[-1].loss)

    def test_no_train_vertices_anywhere_rejected(self, small_graph):
        small_graph.train_mask[:] = False
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=4),
            ClusterSpec(num_workers=2), ECGraphConfig(),
        )
        with pytest.raises(ValueError, match="training vertices"):
            trainer.setup()


class TestExtremeSettings:
    @pytest.mark.parametrize("bits", [1, 16])
    def test_extreme_bit_widths(self, small_graph, bits):
        run = _train(
            small_graph, workers=3, epochs=8,
            fp_mode="reqec", bp_mode="resec",
            fp_bits=bits, bp_bits=bits, adaptive_bits=False,
        )
        assert np.isfinite(run.epochs[-1].loss)

    def test_trend_period_two(self, small_graph):
        run = _train(
            small_graph, workers=3, epochs=8,
            fp_mode="reqec", trend_period=2,
        )
        assert np.isfinite(run.epochs[-1].loss)

    def test_delay_longer_than_training(self, small_graph):
        run = _train(
            small_graph, workers=3, epochs=3,
            fp_mode="delayed", bp_mode="delayed", delayed_rounds=50,
        )
        assert np.isfinite(run.epochs[-1].loss)

    def test_more_servers_than_parameters_rows(self, small_graph):
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=2),
            ClusterSpec(num_workers=2, num_servers=13),
            ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        )
        result = trainer.run_epoch(0)
        assert np.isfinite(result.loss)

    def test_single_layer_model(self, small_graph):
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=1, hidden_dim=4),
            ClusterSpec(num_workers=2),
            ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        )
        run = trainer.train(10)
        assert run.best_test_accuracy() > 0.3

    def test_workers_exceeding_components(self):
        # 6 workers for a 12-vertex graph: some workers get 2 vertices.
        edges = [(i, (i + 1) % 12) for i in range(12)]
        edges += [((i + 1) % 12, i) for i in range(12)]
        graph = _graph_from_edges(edges, 12)
        run = _train(graph, workers=6)
        assert np.isfinite(run.epochs[-1].loss)
