"""Optimizers used by the parameter servers.

In EC-Graph the workers push weight gradients to the servers; each server
sums the per-worker gradients and applies the optimizer to the shard of
parameters it owns (paper Algorithm 2, server lines 1-3). The optimizers
here therefore operate on plain named ``numpy`` arrays so a server can run
them over any shard without knowing the model structure.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

__all__ = ["Optimizer", "SGD", "Momentum", "Adam", "AdaGrad", "make_optimizer"]

Params = Dict[str, np.ndarray]
Grads = Dict[str, np.ndarray]


class Optimizer:
    """Base class: stateful update rule over named parameter arrays."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def step(self, params: Params, grads: Grads) -> None:
        """Update ``params`` in place using ``grads``.

        Parameters missing from ``grads`` are left untouched, which lets a
        server own a superset of what any single round updates.
        """
        raise NotImplementedError

    def state_names(self) -> Iterable[str]:
        """Names of the parameters with allocated optimizer state."""
        return ()

    def reset(self) -> None:
        """Drop all accumulated state (used between benchmark runs)."""


class SGD(Optimizer):
    """Vanilla stochastic gradient descent with optional weight decay."""

    def __init__(self, lr: float = 0.01, weight_decay: float = 0.0):
        super().__init__(lr)
        self.weight_decay = weight_decay

    def step(self, params: Params, grads: Grads) -> None:
        for name, grad in grads.items():
            if name not in params:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            if self.weight_decay:
                grad = grad + self.weight_decay * params[name]
            params[name] -= (self.lr * grad).astype(params[name].dtype)


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.9,
                 weight_decay: float = 0.0):
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Params = {}

    def step(self, params: Params, grads: Grads) -> None:
        for name, grad in grads.items():
            if name not in params:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            if self.weight_decay:
                grad = grad + self.weight_decay * params[name]
            vel = self._velocity.get(name)
            if vel is None:
                vel = np.zeros_like(params[name])
            vel = self.momentum * vel + grad
            self._velocity[name] = vel
            params[name] -= (self.lr * vel).astype(params[name].dtype)

    def state_names(self):
        return self._velocity.keys()

    def reset(self) -> None:
        self._velocity.clear()


class Adam(Optimizer):
    """Adam (Kingma & Ba), the optimizer the paper uses for all systems."""

    def __init__(self, lr: float = 0.01, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Params = {}
        self._v: Params = {}
        self._t: Dict[str, int] = {}

    def step(self, params: Params, grads: Grads) -> None:
        for name, grad in grads.items():
            if name not in params:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            if self.weight_decay:
                grad = grad + self.weight_decay * params[name]
            m = self._m.get(name)
            if m is None:
                m = np.zeros_like(params[name], dtype=np.float64)
                self._m[name] = m
                self._v[name] = np.zeros_like(params[name], dtype=np.float64)
                self._t[name] = 0
            v = self._v[name]
            self._t[name] += 1
            t = self._t[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(grad)
            m_hat = m / (1.0 - self.beta1 ** t)
            v_hat = v / (1.0 - self.beta2 ** t)
            update = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            params[name] -= update.astype(params[name].dtype)

    def state_names(self):
        return self._m.keys()

    def reset(self) -> None:
        self._m.clear()
        self._v.clear()
        self._t.clear()


class AdaGrad(Optimizer):
    """AdaGrad: per-coordinate learning rates from accumulated squares."""

    def __init__(self, lr: float = 0.01, eps: float = 1e-10):
        super().__init__(lr)
        self.eps = eps
        self._accum: Params = {}

    def step(self, params: Params, grads: Grads) -> None:
        for name, grad in grads.items():
            if name not in params:
                raise KeyError(f"gradient for unknown parameter {name!r}")
            acc = self._accum.get(name)
            if acc is None:
                acc = np.zeros_like(params[name], dtype=np.float64)
                self._accum[name] = acc
            acc += np.square(grad)
            update = self.lr * grad / (np.sqrt(acc) + self.eps)
            params[name] -= update.astype(params[name].dtype)

    def state_names(self):
        return self._accum.keys()

    def reset(self) -> None:
        self._accum.clear()


_OPTIMIZERS = {
    "sgd": SGD,
    "momentum": Momentum,
    "adam": Adam,
    "adagrad": AdaGrad,
}

# Public registry surface: the names configs may validate against.
OPTIMIZER_NAMES: tuple[str, ...] = tuple(sorted(_OPTIMIZERS))


def make_optimizer(name: str, lr: float, **kwargs) -> Optimizer:
    """Build an optimizer by registry name (``adam`` is the paper default)."""
    try:
        cls = _OPTIMIZERS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_OPTIMIZERS))
        raise KeyError(f"unknown optimizer {name!r}; known: {known}") from None
    return cls(lr=lr, **kwargs)
