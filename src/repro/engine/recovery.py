"""Checkpointing, crash recovery and elastic membership for the engine.

The :class:`RecoveryManager` owns the fault-tolerance lifecycle that
used to be spread across the trainer monolith: advancing the injector's
epoch clock, rebuilding crashed workers, rotating/saving parameter
checkpoints and rolling servers back after a crash.

Checkpoint files rotate — before each save, the previous ``latest.npz``
moves to ``previous.npz`` — so a checkpoint that lands corrupt on disk
(torn write, bit rot) no longer kills recovery: restore skips it with a
warning metric (``fault_checkpoint_corrupt`` / the
``corrupt_checkpoints`` counter) and falls back to the previous file,
then to the in-memory snapshot. When every on-disk generation is
corrupt *and* no in-memory snapshot exists, restore raises a clean
:class:`~repro.core.checkpoint.CheckpointError` instead of silently
training on from diverged parameters (the CLI maps it to exit code 2).

With elastic membership attached (``faults.elastic``), the manager also
drives the permanent-failure path: the
:class:`~repro.membership.view.MembershipView` marks leases expired,
survivors absorb the detection stall, the
:class:`~repro.membership.reassign.PartitionReassigner` hands orphaned
partitions to the least-loaded survivor, and the
:class:`~repro.membership.watchdog.ConvergenceWatchdog` audits the loss
trajectory after each disruption — rolling back and escalating channel
bit widths when training diverges (see ``docs/fault_tolerance.md``).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from typing import TYPE_CHECKING, Any

from repro.engine.context import ExchangeContext

if TYPE_CHECKING:
    from repro.membership.reassign import PartitionReassigner
    from repro.membership.view import MembershipView
    from repro.membership.watchdog import ConvergenceWatchdog

__all__ = ["RecoveryManager", "CHECKPOINT_NAME", "PREVIOUS_CHECKPOINT_NAME"]

CHECKPOINT_NAME = "latest.npz"
PREVIOUS_CHECKPOINT_NAME = "previous.npz"


class RecoveryManager:
    """Drives fault-tolerance hooks around each training iteration.

    Args:
        ctx: The shared exchange context (injector, runtime, workers,
            servers, policies, telemetry).
        trainer: The owning trainer facade — checkpoint serialization
            (:func:`~repro.core.checkpoint.save_checkpoint`) captures
            the trainer's model/config metadata.
    """

    def __init__(self, ctx: ExchangeContext, trainer: Any) -> None:
        self.ctx = ctx
        self.trainer = trainer
        # (epoch, params) in-memory snapshot — the rollback of last
        # resort when no disk checkpoint is configured or readable.
        self.param_snapshot: tuple[int, dict[str, np.ndarray]] | None = None
        # Elastic membership collaborators (attach_elasticity).
        self.membership: MembershipView | None = None
        self.reassigner: PartitionReassigner | None = None
        self.watchdog: ConvergenceWatchdog | None = None
        self._corruption_mark = 0

    def attach_elasticity(
        self,
        membership: MembershipView,
        reassigner: PartitionReassigner,
        watchdog: ConvergenceWatchdog,
    ) -> None:
        """Wire the elastic-membership collaborators (``faults.elastic``).

        Called by the trainer facade after the engine is built; the
        three objects always travel together — the view decides *who*
        is alive, the reassigner decides *where* orphaned partitions
        go, and the watchdog decides whether training survived it.
        """
        self.membership = membership
        self.reassigner = reassigner
        self.watchdog = watchdog

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------
    def begin_epoch(self, t: int) -> None:
        """Advance the injector clock and recover scheduled faults."""
        injector = self.ctx.injector
        if injector is None:
            return
        injector.start_epoch(t)
        crashed = injector.take_crashes(t)
        if crashed:
            with self.ctx.telemetry.span(
                "recovery", epoch=t, crashed=list(crashed)
            ):
                self.recover_workers(crashed)
        if self.membership is not None:
            self._apply_membership(t)

    def end_epoch(self, t: int) -> None:
        """Auto-checkpoint the server parameters after epoch ``t``."""
        if self.ctx.injector is not None:
            self.maybe_checkpoint(t)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def maybe_checkpoint(self, t: int) -> None:
        faults = self.ctx.config.faults
        if (t + 1) % faults.checkpoint_every != 0:
            return
        with self.ctx.telemetry.span("checkpoint", epoch=t):
            if faults.checkpoint_dir is not None:
                from repro.core.checkpoint import save_checkpoint

                directory = Path(faults.checkpoint_dir)
                path = directory / CHECKPOINT_NAME
                # Rotate so a corrupt newest file still leaves one good
                # generation on disk (os.replace keeps rotation atomic).
                if path.exists():
                    import os

                    os.replace(path, directory / PREVIOUS_CHECKPOINT_NAME)
                save_checkpoint(self.trainer, path, epoch=t + 1)
            self.param_snapshot = (t + 1, self.ctx.servers.state_dict())

    def restore_latest_checkpoint(self) -> bool:
        """Load the newest readable parameter checkpoint into the servers.

        Tries ``latest.npz``; a corrupt file is *skipped* — counted in
        ``corrupt_checkpoints`` and the ``fault_checkpoint_corrupt``
        metric — in favour of the rotated ``previous.npz``, and the
        in-memory snapshot remains the final fallback. Returns True when
        any source restored the parameters.

        Raises:
            CheckpointError: When at least one checkpoint file exists
                on disk but *every* generation is corrupt and there is
                no in-memory snapshot to fall back to. Recovery cannot
                proceed from known-bad parameters, so this fails fast
                (the CLI reports it as exit code 2).
        """
        ctx = self.ctx
        faults = ctx.config.faults
        corrupt: list[str] = []
        if faults.checkpoint_dir is not None:
            from repro.core.checkpoint import CheckpointError, load_checkpoint

            directory = Path(faults.checkpoint_dir)
            for name in (CHECKPOINT_NAME, PREVIOUS_CHECKPOINT_NAME):
                try:
                    state = load_checkpoint(directory / name)
                except FileNotFoundError:
                    continue
                except CheckpointError:
                    corrupt.append(name)
                    if ctx.injector is not None:
                        ctx.injector.counters.corrupt_checkpoints += 1
                    if ctx.telemetry.enabled:
                        ctx.telemetry.metrics.inc(
                            "fault_checkpoint_corrupt", file=name
                        )
                    continue
                for name_, value in state["params"].items():
                    ctx.servers.set(name_, value)
                return True
        if self.param_snapshot is not None:
            _, params = self.param_snapshot
            for name, value in params.items():
                ctx.servers.set(name, value.copy())
            return True
        if corrupt:
            from repro.core.checkpoint import CheckpointError

            raise CheckpointError(
                "cannot restore parameters: every checkpoint generation "
                f"in {faults.checkpoint_dir} is corrupt "
                f"({', '.join(corrupt)}) and no in-memory snapshot exists"
            )
        return False

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def recover_workers(self, crashed: list[int]) -> None:
        """Rebuild crashed workers and resynchronize the exchange state.

        The static partition state (adjacency rows, feature shards,
        request/serve plans) rebuilds from the worker's local storage —
        charged as ``recovery_seconds`` of stall plus the re-fetch of
        the first-hop feature cache — while the server-side parameters
        roll back to the latest checkpoint (``restore_params``) and the
        error-compensation channel state touching the dead worker is
        zeroed (``reset_residuals``), restoring the Theorem-1 initial
        condition ``delta = 0`` for those channels.
        """
        ctx = self.ctx
        faults = ctx.config.faults
        counters = ctx.injector.counters
        obs = ctx.telemetry
        for worker in crashed:
            counters.crashes += 1
            if obs.enabled:
                obs.metrics.inc("fault_crashes", worker=worker)
            ctx.runtime.add_stall(worker, faults.recovery_seconds)
            state = ctx.workers[worker]
            rebuild_halo = (
                ctx.config.cache_first_hop
                and state.halo_features is not None
            )
            state.crash_reset(ctx.params.num_layers)
            if rebuild_halo:
                halo = np.zeros(
                    (state.num_halo, ctx.graph.feature_dim),
                    dtype=np.float32,
                )
                # ecg: ignore[ECG003] halo_slots insertion order IS the bit-pinned channel plan order; refetch must scatter rows in plan order
                for owner, slots in state.halo_slots.items():
                    responder = ctx.workers[owner]
                    rows = responder.features[responder.serves[worker]]
                    halo[slots] = rows
                    ctx.runtime.send_worker_to_worker(
                        owner, worker, rows.nbytes + 16, "recovery"
                    )
                state.halo_features = halo
            if faults.reset_residuals:
                for policy in (ctx.fp_policy, ctx.bp_policy):
                    invalidate = getattr(policy, "invalidate_worker", None)
                    if invalidate is not None:
                        invalidate(worker)
            ctx.transport.invalidate_worker(worker)
            if ctx.executor is not None:
                # Under multiprocess execution a crash is a real process
                # kill: the executor SIGKILLs the worker process and
                # respawns it from the just-recovered supervisor state.
                ctx.executor.on_worker_crash(worker)
        if faults.restore_params and self.restore_latest_checkpoint():
            counters.params_rolled_back += 1
            if obs.enabled:
                obs.metrics.inc("fault_params_rolled_back")

    # ------------------------------------------------------------------
    # Elastic membership (permanent failures, rejoins, watchdog)
    # ------------------------------------------------------------------
    def _apply_membership(self, t: int) -> None:
        """Process the epoch's scheduled permanent losses and rejoins."""
        injector = self.ctx.injector
        lost = injector.take_permanent_failures(t)
        rejoined = injector.take_rejoins(t)
        if not lost and not rejoined:
            return
        with self.ctx.telemetry.span(
            "membership", epoch=t, lost=list(lost), rejoined=list(rejoined)
        ):
            for worker in lost:
                self._lose_worker(t, worker)
            for worker in rejoined:
                self._rejoin_worker(t, worker)

    def _lose_worker(self, t: int, worker: int) -> None:
        """Permanent loss: detect, check quorum, adopt, roll back, arm.

        The lease expires after ``lease_grace_s`` (quantized to whole
        heartbeats); every survivor stalls for that detection window.
        The orphaned partition then moves to the least-loaded survivor
        and the server parameters roll back to the latest checkpoint so
        the adopter's first iteration starts from a consistent model.
        """
        ctx = self.ctx
        membership = self.membership
        counters = ctx.injector.counters
        obs = ctx.telemetry
        if not membership.is_alive(worker):
            membership.record(t, "loss_ignored", worker=worker)
            return
        stall = membership.mark_dead(t, worker)
        counters.permanent_failures += 1
        if obs.enabled:
            obs.metrics.inc("membership_lost", worker=worker)
        obs.ledger.record_event("worker_lost", t, worker=worker)
        for survivor in membership.alive_workers():
            ctx.runtime.add_stall(survivor, stall)
        membership.require_quorum(t)
        adopter = self.reassigner.adopt(t, worker)
        counters.adoptions += 1
        if obs.enabled:
            obs.metrics.inc("membership_adoptions", adopter=adopter)
        obs.ledger.record_event(
            "partition_adopted", t, worker=worker, adopter=adopter
        )
        if ctx.config.faults.restore_params and self.restore_latest_checkpoint():
            counters.params_rolled_back += 1
            if obs.enabled:
                obs.metrics.inc("fault_params_rolled_back")
        self.watchdog.arm(t, "membership_change")

    def _rejoin_worker(self, t: int, worker: int) -> None:
        """A lost worker returns: reclaim its original partition."""
        ctx = self.ctx
        membership = self.membership
        obs = ctx.telemetry
        if not membership.mark_alive(t, worker):
            membership.record(t, "rejoin_ignored", worker=worker)
            return
        ctx.injector.counters.rejoins += 1
        if obs.enabled:
            obs.metrics.inc("membership_rejoins", worker=worker)
        obs.ledger.record_event("worker_rejoined", t, worker=worker)
        self.reassigner.rejoin(t, worker)
        self.watchdog.arm(t, "membership_change")

    def observe_convergence(
        self, t: int, loss: float, grad_norm: float | None = None
    ) -> None:
        """Feed the epoch's loss to the watchdog; respond to a trip.

        Called by the core after the optimize stage (before the epoch's
        checkpoint, so a rollback is never overwritten by a diverged
        save). A trip rolls the servers back, escalates every halo
        channel pair to the widest bit width, and resets the backward
        residual state; ``max_consecutive_rollbacks`` trips in a row
        without a healthy epoch raise
        :class:`~repro.membership.watchdog.DivergenceError`.
        """
        if self.watchdog is None:
            return
        ctx = self.ctx
        faults = ctx.config.faults
        injector = ctx.injector
        if injector is not None:
            corruptions = injector.counters.corruptions
            burst = corruptions - self._corruption_mark
            self._corruption_mark = corruptions
            if burst >= faults.watchdog_burst:
                self.watchdog.arm(t, "corruption_burst")
                if self.membership is not None:
                    self.membership.record(
                        t, "watchdog_armed",
                        reason="corruption_burst", corruptions=burst,
                    )
        reason = self.watchdog.observe(t, loss, grad_norm)
        if reason is None:
            return
        counters = injector.counters if injector is not None else None
        obs = ctx.telemetry
        if counters is not None:
            counters.watchdog_trips += 1
        if obs.enabled:
            obs.metrics.inc("watchdog_trips", reason=reason)
        obs.ledger.record_event("watchdog_trip", t, reason=reason)
        if self.membership is not None:
            self.membership.record(
                t, "watchdog_trip", reason=reason, loss=float(loss),
                consecutive=self.watchdog.consecutive,
            )
        with obs.span("watchdog_response", epoch=t, reason=reason):
            if self.restore_latest_checkpoint():
                if counters is not None:
                    counters.watchdog_rollbacks += 1
                if obs.enabled:
                    obs.metrics.inc("watchdog_rollbacks")
                obs.ledger.record_event("watchdog_rollback", t)
                if self.membership is not None:
                    self.membership.record(t, "watchdog_rollback")
            pairs = set()
            for state in ctx.workers:
                for owner in state.halo_slots:
                    pairs.add((owner, state.worker_id))
            changed = ctx.tuner.escalate(sorted(pairs))
            if changed:
                if counters is not None:
                    counters.watchdog_escalations += len(changed)
                if obs.enabled:
                    obs.metrics.inc(
                        "watchdog_escalations", value=len(changed)
                    )
                obs.ledger.record_event(
                    "watchdog_escalation", t, channels=len(changed)
                )
                if self.membership is not None:
                    self.membership.record(
                        t, "watchdog_escalation", channels=len(changed)
                    )
            reset = getattr(ctx.bp_policy, "reset", None)
            if reset is not None:
                reset()
            if self.reassigner is not None:
                # Sampled-mode backward channels must be primed before
                # the next respond() call.
                self.reassigner.prime_sampled_channels()
        self.watchdog.arm(t, "watchdog_trip")
        if self.watchdog.exhausted:
            from repro.membership.watchdog import DivergenceError

            raise DivergenceError(
                f"convergence watchdog exhausted at epoch {t}: "
                f"{self.watchdog.consecutive} consecutive rollbacks "
                f"(limit {faults.max_consecutive_rollbacks}, "
                f"last trigger {reason!r})"
            )
