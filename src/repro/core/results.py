"""Result containers for training runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.engine import EpochBreakdown
from repro.obs.registry import MetricsSnapshot
from repro.obs.telemetry import TelemetryReport

__all__ = ["EpochResult", "ConvergenceRun"]


@dataclass(frozen=True)
class EpochResult:
    """Metrics of one training epoch.

    Accuracy numbers come from the same forward pass that trained (i.e.
    under whatever compression the run uses), which is what the paper's
    per-epoch curves show.

    ``telemetry`` is the epoch-scoped metrics snapshot when the run was
    instrumented (``ObsConfig(enabled=True, epoch_snapshots=True)``);
    ``None`` otherwise.
    """

    epoch: int
    loss: float
    train_accuracy: float
    val_accuracy: float
    test_accuracy: float
    breakdown: EpochBreakdown
    telemetry: MetricsSnapshot | None = None


@dataclass
class ConvergenceRun:
    """A full training run: per-epoch metrics plus preprocessing costs.

    Attributes:
        name: Label used in benchmark tables (system / configuration).
        epochs: Per-epoch results, in order.
        preprocessing_seconds: Partitioning + data loading + caches
            (Fig. 9 charges these in the end-to-end comparison).
        final_test_accuracy: Exact-communication test accuracy measured
            after training (Table V); ``None`` if not evaluated.
        meta: Free-form details (bits used, dataset, cluster size, ...).
        telemetry: End-of-run :class:`~repro.obs.TelemetryReport`
            (per-phase span totals, metrics, compression health) when
            the run was instrumented; ``None`` otherwise.
    """

    name: str
    epochs: list[EpochResult] = field(default_factory=list)
    preprocessing_seconds: float = 0.0
    final_test_accuracy: float | None = None
    meta: dict = field(default_factory=dict)
    telemetry: TelemetryReport | None = None

    # ------------------------------------------------------------------
    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    def training_seconds(self) -> float:
        """Sum of modelled epoch times."""
        return sum(e.breakdown.total_seconds for e in self.epochs)

    def end_to_end_seconds(self) -> float:
        """Preprocessing plus training (the Fig. 9 quantity)."""
        return self.preprocessing_seconds + self.training_seconds()

    def avg_epoch_seconds(self) -> float:
        """Mean modelled epoch time (the Table IV quantity)."""
        return self.training_seconds() / self.num_epochs if self.epochs else 0.0

    def best_val_accuracy(self) -> float:
        return max((e.val_accuracy for e in self.epochs), default=0.0)

    def best_test_accuracy(self) -> float:
        return max((e.test_accuracy for e in self.epochs), default=0.0)

    def best_epoch(self) -> int:
        """Epoch index with the highest validation accuracy."""
        if not self.epochs:
            return -1
        return max(self.epochs, key=lambda e: e.val_accuracy).epoch

    def time_to_accuracy(self, target: float) -> float | None:
        """Modelled seconds until test accuracy first reaches ``target``.

        Returns ``None`` when the run never got there — callers must
        treat that as "did not converge", not as zero time.
        """
        elapsed = self.preprocessing_seconds
        for result in self.epochs:
            elapsed += result.breakdown.total_seconds
            if result.test_accuracy >= target:
                return elapsed
        return None

    def total_bytes(self) -> int:
        """Total inter-machine traffic over the run."""
        return sum(e.breakdown.bytes_sent for e in self.epochs)

    def accuracy_curve(self) -> list[tuple[int, float]]:
        """(epoch, test accuracy) pairs — the Fig. 6/7 series."""
        return [(e.epoch, e.test_accuracy) for e in self.epochs]
