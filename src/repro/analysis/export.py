"""Export convergence runs to CSV / JSON.

Benchmark and example outputs are printed as ASCII tables; these helpers
persist the underlying numbers so downstream analysis (plotting,
regression tracking between library versions) has machine-readable data.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.core.results import ConvergenceRun

__all__ = ["run_to_records", "export_csv", "export_json", "load_json"]

_FIELDS = [
    "run", "epoch", "loss", "train_accuracy", "val_accuracy",
    "test_accuracy", "compute_seconds", "comm_seconds", "total_seconds",
    "bytes_sent",
]


def run_to_records(run: ConvergenceRun) -> list[dict]:
    """Flatten one run into per-epoch dict records."""
    records = []
    for result in run.epochs:
        records.append({
            "run": run.name,
            "epoch": result.epoch,
            "loss": result.loss,
            "train_accuracy": result.train_accuracy,
            "val_accuracy": result.val_accuracy,
            "test_accuracy": result.test_accuracy,
            "compute_seconds": result.breakdown.compute_seconds,
            "comm_seconds": result.breakdown.comm_seconds,
            "total_seconds": result.breakdown.total_seconds,
            "bytes_sent": result.breakdown.bytes_sent,
        })
    return records


def export_csv(runs: list[ConvergenceRun], path: str | Path) -> None:
    """Write the per-epoch records of several runs into one CSV file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for run in runs:
            for record in run_to_records(run):
                writer.writerow(record)


def export_json(runs: list[ConvergenceRun], path: str | Path) -> None:
    """Write runs (records + summary metadata) as a JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = []
    for run in runs:
        document.append({
            "name": run.name,
            "meta": run.meta,
            "preprocessing_seconds": run.preprocessing_seconds,
            "final_test_accuracy": run.final_test_accuracy,
            "avg_epoch_seconds": run.avg_epoch_seconds(),
            "total_bytes": run.total_bytes(),
            "epochs": run_to_records(run),
        })
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, default=str)


def load_json(path: str | Path) -> list[dict]:
    """Read a document written by :func:`export_json`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"export not found: {path}")
    with open(path) as handle:
        return json.load(handle)
