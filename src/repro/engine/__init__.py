"""The staged training engine.

``repro.engine`` decomposes the training loop into a composable
pipeline — :class:`~repro.engine.core.TrainerCore` driving
``HaloPlanStage -> ForwardStage -> BackwardStage -> OptimizeStage ->
EvalStage`` — over a single :class:`~repro.engine.context.ExchangeContext`
bundle, with per-architecture math behind the
:class:`~repro.engine.backends.ModelBackend` protocol and every halo
exchange flowing through one :class:`~repro.engine.transport.HaloTransport`.
See ``docs/engine.md`` for the lifecycle and extension points.
"""

from repro.engine.backends import (
    GATBackend,
    GCNBackend,
    ModelBackend,
    SAGEBackend,
    SampledGCNBackend,
)
from repro.engine.context import ExchangeContext
from repro.engine.core import TrainerCore
from repro.engine.executor import SyncExecutor
from repro.engine.recovery import RecoveryManager
from repro.engine.stages import (
    BackwardStage,
    EvalStage,
    ForwardStage,
    HaloPlanStage,
    OptimizeStage,
    Stage,
)
from repro.engine.transport import ChannelSession, HaloTransport

__all__ = [
    "TrainerCore",
    "ExchangeContext",
    "RecoveryManager",
    "ModelBackend",
    "GCNBackend",
    "SampledGCNBackend",
    "SAGEBackend",
    "GATBackend",
    "Stage",
    "HaloPlanStage",
    "ForwardStage",
    "BackwardStage",
    "OptimizeStage",
    "EvalStage",
    "HaloTransport",
    "ChannelSession",
    "SyncExecutor",
]
