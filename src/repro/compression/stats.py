"""Compression quality metrics used in tests and reports."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CompressionReport", "compression_report"]


@dataclass(frozen=True)
class CompressionReport:
    """Error and size statistics for one compress/decompress round-trip.

    Attributes:
        l1_error: Mean absolute element error.
        l2_error: Frobenius norm of the error matrix.
        max_error: Largest absolute element error.
        relative_l2: ``l2_error / ||original||_F`` (0 when original is 0).
        original_bytes: Raw float32 size of the original matrix.
        compressed_bytes: Wire size of the encoded message.
        ratio: ``original_bytes / compressed_bytes``.
    """

    l1_error: float
    l2_error: float
    max_error: float
    relative_l2: float
    original_bytes: int
    compressed_bytes: int
    ratio: float


def compression_report(
    original: np.ndarray,
    reconstructed: np.ndarray,
    compressed_bytes: int,
) -> CompressionReport:
    """Compare a reconstruction against its original."""
    if original.shape != reconstructed.shape:
        raise ValueError(
            f"shape mismatch: {original.shape} vs {reconstructed.shape}"
        )
    error = original.astype(np.float64) - reconstructed.astype(np.float64)
    l2 = float(np.linalg.norm(error))
    norm = float(np.linalg.norm(original))
    original_bytes = original.size * 4
    return CompressionReport(
        l1_error=float(np.abs(error).mean()) if error.size else 0.0,
        l2_error=l2,
        max_error=float(np.abs(error).max()) if error.size else 0.0,
        relative_l2=l2 / norm if norm > 0 else 0.0,
        original_bytes=original_bytes,
        compressed_bytes=compressed_bytes,
        ratio=original_bytes / compressed_bytes if compressed_bytes else 0.0,
    )
