"""ECG007 — config fields, validators and docs move together.

The run configs (``ECGraphConfig``, ``FaultConfig``, ``ObsConfig``,
``ModelConfig``) are frozen dataclasses whose ``__post_init__``
validators are the only thing standing between a typo'd sweep file and
eight hours of garbage results. Fields added without validation (or
documentation) drift: the dataclass accepts anything, the docstring
lies by omission, and the failure surfaces as NaNs three layers down.

For every ``@dataclass``-decorated class whose name ends in ``Config``,
each field must:

* be *referenced* in ``__post_init__`` (as ``self.<field>`` or a
  local use of the name) — i.e. participate in validation. ``bool``
  fields are exempt (every bool is valid) and so are nested ``*Config``
  fields (their own ``__post_init__`` runs first); and
* appear by name in the class docstring (the ``Attributes:`` section).

A class with unvalidated fields and no ``__post_init__`` at all is
flagged once per field, anchored to the field line so a narrowly scoped
pragma can exempt a genuinely unconstrained field (with its reason).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintrules.base import Finding, ModuleInfo, Rule, dotted_name

__all__ = ["ConfigDriftRule"]


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if dotted_name(target).rsplit(".", 1)[-1] == "dataclass":
            return True
    return False


def _exempt_annotation(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return True
    text = ast.unparse(annotation)
    return "bool" in text or "Config" in text or "ClassVar" in text


def _validated_names(post_init: ast.AST | None) -> set[str]:
    if post_init is None:
        return set()
    names: set[str] = set()
    for node in ast.walk(post_init):
        if isinstance(node, ast.Attribute) and (
            isinstance(node.value, ast.Name) and node.value.id == "self"
        ):
            names.add(node.attr)
    return names


class ConfigDriftRule(Rule):
    """Every config field must appear in its validator and its docs."""

    code = "ECG007"
    name = "config-drift"
    summary = (
        "config dataclass field missing from __post_init__ validation "
        "or from the class docstring"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for cls in self.walk(module):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not cls.name.endswith("Config") or not _is_dataclass(cls):
                continue
            post_init = next(
                (
                    item for item in cls.body
                    if isinstance(item, ast.FunctionDef)
                    and item.name == "__post_init__"
                ),
                None,
            )
            validated = _validated_names(post_init)
            docstring = ast.get_docstring(cls) or ""
            for item in cls.body:
                if not isinstance(item, ast.AnnAssign):
                    continue
                if not isinstance(item.target, ast.Name):
                    continue
                name = item.target.id
                if name.startswith("_"):
                    continue
                if name not in docstring:
                    yield module.finding(
                        self.code,
                        f"{cls.name}.{name} is not documented in the "
                        "class docstring (Attributes section)",
                        item,
                    )
                if _exempt_annotation(item.annotation):
                    continue
                if name not in validated:
                    yield module.finding(
                        self.code,
                        f"{cls.name}.{name} is never referenced in "
                        "__post_init__; add validation or pragma why the "
                        "field is unconstrained",
                        item,
                    )
