"""ECG004 — shared resources need an explicit teardown method.

``/dev/shm`` segments and forked worker processes outlive the Python
objects that created them: a class that allocates
``multiprocessing.shared_memory`` blocks, builds a ``SharedStore``, or
spawns processes/threads and relies on ``__del__`` for cleanup leaks
segments on interpreter crash and orphans children on exception paths
(the exact failure PR 7 burned review cycles on).

Any class whose methods construct one of the tracked resources —
``SharedMemory``, ``SharedStore``, ``Process``, ``Thread``, ``Popen``,
``Pool`` — must define an idempotent ``close()`` (or the repo's
equivalent ``shutdown()``) so callers can route teardown through
``trainer.close()``-style chains and ``atexit`` hooks have a single
entry point. ``__del__`` alone does not satisfy the rule: finalizer
order during interpreter shutdown is undefined.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lintrules.base import Finding, ModuleInfo, Rule, dotted_name

__all__ = ["SharedLifecycleRule"]

_RESOURCE_CONSTRUCTORS = {
    "SharedMemory", "SharedStore", "Process", "Thread", "Popen", "Pool",
}
_TEARDOWN_METHODS = {"close", "shutdown"}


class SharedLifecycleRule(Rule):
    """Classes creating shared memory / processes must define close()."""

    code = "ECG004"
    name = "shared-lifecycle"
    summary = (
        "class allocates SharedMemory/SharedStore or spawns "
        "processes/threads but defines no close()/shutdown() teardown"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in self.walk(module):
            if not isinstance(node, ast.ClassDef):
                continue
            acquired = self._acquired_resources(node)
            if not acquired:
                continue
            methods = {
                item.name for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if not (methods & _TEARDOWN_METHODS):
                yield module.finding(
                    self.code,
                    f"class {node.name} creates {', '.join(sorted(acquired))} "
                    "but defines no close()/shutdown() teardown method",
                    node,
                )

    @staticmethod
    def _acquired_resources(cls: ast.ClassDef) -> set[str]:
        acquired: set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                terminal = name.rsplit(".", 1)[-1]
                if terminal in _RESOURCE_CONSTRUCTORS:
                    acquired.add(terminal)
        return acquired
