"""One-call constructors for every system in the paper's evaluation.

All systems run on the same simulated substrate (compute measured, traffic
byte-accurate, network modelled), so differences between them come only
from their algorithms — the same methodology the paper follows when it
reimplements AGL and DistGNN. The registry powers the Table IV/V and
Fig. 8/9 benchmarks.

Systems:

* ``dgl`` / ``pyg`` — single-machine full-batch GCN. DGL applies the
  matmul-ordering optimization, PyG does not (the paper's gap between
  the two on high-dimensional inputs).
* ``distgnn`` — graph-centered full-batch with delayed remote partial
  aggregation (round ``r = 5`` per the DistGNN paper).
* ``ecgraph`` — the full EC-Graph pipeline (ReqEC-FP + Bit-Tuner +
  ResEC-BP).
* ``noncp`` / ``cponly`` — EC-Graph's ablation arms.
* ``distdgl`` — graph-centered mini-batch with *online* sampling.
* ``agl`` — ML-centered with offline GraphFlat sampling.
* ``aligraph`` — ML-centered full-graph mode with a capped neighbour
  cache.
* ``ecgraph_s`` — EC-Graph's sampling mode (offline sampling +
  compressed forward + ResEC-BP backward).
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.ml_centered import MLCenteredTrainer
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.results import ConvergenceRun
from repro.core.sampling_trainer import SampledECGraphTrainer
from repro.core.trainer import ECGraphTrainer
from repro.graph.attributed import AttributedGraph

__all__ = ["SYSTEMS", "system_names", "run_system", "default_fanouts"]


def default_fanouts(num_layers: int) -> list[int]:
    """Sampling ratios matching the paper's Table IV conventions."""
    presets = {2: [10, 5], 3: [5, 2, 2], 4: [5, 5, 1, 1]}
    return presets.get(num_layers, [5] * num_layers)


def _standalone(graph, model, cluster, config, fanouts, transform_first):
    del cluster, fanouts
    config = replace(
        config,
        fp_mode="raw",
        bp_mode="raw",
        transform_first=transform_first,
        cache_first_hop=False,
    )
    return ECGraphTrainer(
        graph, model, ClusterSpec(num_workers=1, num_servers=1), config
    )


def _make_dgl(graph, model, cluster, config, fanouts):
    return _standalone(graph, model, cluster, config, fanouts, True)


def _make_pyg(graph, model, cluster, config, fanouts):
    return _standalone(graph, model, cluster, config, fanouts, False)


def _make_distgnn(graph, model, cluster, config, fanouts):
    del fanouts
    config = replace(
        config, fp_mode="delayed", bp_mode="delayed", delayed_rounds=5
    )
    return ECGraphTrainer(graph, model, cluster, config)


def _make_ecgraph(graph, model, cluster, config, fanouts):
    del fanouts
    config = replace(config, fp_mode="reqec", bp_mode="resec")
    return ECGraphTrainer(graph, model, cluster, config)


def _make_noncp(graph, model, cluster, config, fanouts):
    del fanouts
    return ECGraphTrainer(graph, model, cluster, config.as_non_cp())


def _make_cponly(graph, model, cluster, config, fanouts):
    del fanouts
    return ECGraphTrainer(graph, model, cluster, config.as_cp_only())


def _make_distdgl(graph, model, cluster, config, fanouts):
    config = replace(config, fp_mode="raw", bp_mode="raw")
    return SampledECGraphTrainer(
        graph, model, cluster,
        fanouts or default_fanouts(model.num_layers),
        config=config,
        online=True,
    )


def _make_ecgraph_s(graph, model, cluster, config, fanouts):
    config = replace(config, fp_mode="compress", bp_mode="resec")
    return SampledECGraphTrainer(
        graph, model, cluster,
        fanouts or default_fanouts(model.num_layers),
        config=config,
        online=False,
    )


def _make_agl(graph, model, cluster, config, fanouts):
    return MLCenteredTrainer(
        graph, model, cluster,
        cache_fanouts=fanouts or default_fanouts(model.num_layers),
        config=config,
        name="agl",
    )


def _make_aligraph(graph, model, cluster, config, fanouts):
    del fanouts
    # Full-graph mode: the cache keeps up to this many neighbours per
    # vertex per hop (a storage cap, not a sampling ratio).
    cap = [25] * model.num_layers
    return MLCenteredTrainer(
        graph, model, cluster, cache_fanouts=cap, config=config,
        name="aligraph-fg",
    )


SYSTEMS = {
    "dgl": _make_dgl,
    "pyg": _make_pyg,
    "distgnn": _make_distgnn,
    "ecgraph": _make_ecgraph,
    "noncp": _make_noncp,
    "cponly": _make_cponly,
    "distdgl": _make_distdgl,
    "ecgraph_s": _make_ecgraph_s,
    "agl": _make_agl,
    "aligraph": _make_aligraph,
}


def system_names() -> list[str]:
    return list(SYSTEMS)


def run_system(
    system: str,
    graph: AttributedGraph,
    num_layers: int = 2,
    hidden_dim: int = 16,
    num_workers: int = 6,
    num_epochs: int = 100,
    config: ECGraphConfig | None = None,
    cluster: ClusterSpec | None = None,
    fanouts: list[int] | None = None,
    patience: int | None = None,
) -> ConvergenceRun:
    """Build and train one named system; returns its convergence run.

    Args:
        system: Registry name (see :data:`SYSTEMS`).
        graph: Input graph.
        num_layers / hidden_dim: GNN architecture.
        num_workers: Cluster size (single-machine systems ignore it).
        num_epochs: Training iterations.
        config: Base configuration; each system overrides its exchange
            modes but inherits optimizer/seed/bits from here.
        cluster: Explicit topology overriding ``num_workers``.
        fanouts: Sampling ratios for the sampling-based systems.
        patience: Early-stopping patience on validation accuracy.
    """
    try:
        factory = SYSTEMS[system]
    except KeyError:
        known = ", ".join(sorted(SYSTEMS))
        raise KeyError(f"unknown system {system!r}; known: {known}") from None
    model = ModelConfig(num_layers=num_layers, hidden_dim=hidden_dim)
    spec = cluster or ClusterSpec(num_workers=num_workers)
    base = config or ECGraphConfig()
    trainer = factory(graph, model, spec, base, fanouts)
    try:
        return trainer.train(num_epochs, patience=patience, name=system)
    finally:
        # MLCenteredTrainer (agl/aligraph) holds no execution resources.
        close = getattr(trainer, "close", None)
        if close is not None:
            close()
