"""The cluster runtime: compute/communication accounting per epoch.

The original system runs workers as processes connected by gRPC. This
reproduction executes all workers inside one process (sequentially), and
recovers distributed timing by accounting:

* **compute** — numpy kernel time is measured per worker with
  :meth:`ClusterRuntime.worker_compute`; because real workers run in
  parallel, the epoch's compute time is the *maximum* over workers;
* **communication** — every inter-machine message is charged to the
  traffic meter with its exact wire size; the epoch's communication time
  is the busiest link's transfer time under the cluster's network model.

``epoch_time = max_w compute_w / speed + comm_time`` is the synchronous
(BSP) execution model that both EC-Graph and the baselines follow.

Charging clients: the staged training engine reaches the runtime through
its :class:`~repro.engine.context.ExchangeContext` — the halo transport
(:class:`~repro.engine.transport.HaloTransport`) charges per-channel
codec time and wire bytes, the stages wrap worker kernels in
:meth:`ClusterRuntime.worker_compute`, and the parameter servers charge
pulls/pushes. The runtime's ``telemetry`` handle is the same object the
context carries, so span attribution and traffic accounting stay
aligned.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.cluster.network import TrafficMeter
from repro.cluster.topology import ClusterSpec
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["EpochBreakdown", "ClusterRuntime"]


@dataclass(frozen=True)
class EpochBreakdown:
    """Timing and traffic summary of one training epoch.

    Attributes:
        compute_seconds: Bottleneck worker's compute time.
        comm_seconds: Bottleneck link's communication time.
        total_seconds: Modelled epoch wall-clock (compute + comm).
        bytes_sent: Total inter-machine bytes this epoch.
        category_bytes: Bytes per message category this epoch.
    """

    compute_seconds: float
    comm_seconds: float
    total_seconds: float
    bytes_sent: int
    category_bytes: dict[str, int]


class ClusterRuntime:
    """Accounting-backed execution context for one simulated cluster."""

    def __init__(self, spec: ClusterSpec, telemetry: Telemetry | None = None):
        self.spec = spec
        self.meter = TrafficMeter()
        # The telemetry mirror of the meter: every inter-machine charge
        # also increments a labelled byte/message counter, so metrics
        # snapshots agree with the meter to the byte.
        self.telemetry = telemetry or NULL_TELEMETRY
        # Optional FaultInjector (repro.faults); the trainer attaches it
        # when fault injection is enabled. It scales straggler compute
        # here and drives message fates / server outages downstream.
        self.fault_injector = None
        self._compute = np.zeros(spec.num_workers, dtype=np.float64)
        self._epoch_history: list[EpochBreakdown] = []

    # ------------------------------------------------------------------
    # Compute accounting
    # ------------------------------------------------------------------
    def _compute_scale(self, worker: int) -> float:
        if self.fault_injector is None:
            return 1.0
        return self.fault_injector.compute_scale(worker)

    @contextmanager
    def worker_compute(self, worker: int):
        """Context manager charging elapsed wall time to ``worker``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._compute[worker] += elapsed * self._compute_scale(worker)

    def add_compute(self, worker: int, seconds: float) -> None:
        """Directly charge compute seconds (used by analytic baselines)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._compute[worker] += seconds * self._compute_scale(worker)

    def add_stall(self, worker: int, seconds: float) -> None:
        """Charge fault-tolerance stall time (backoff, late delivery).

        Stalls are wall-clock waits, not CPU work, so straggler scaling
        does not apply; they still extend the worker's epoch time under
        the BSP model.
        """
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._compute[worker] += seconds
        if self.fault_injector is not None:
            self.fault_injector.counters.extra_seconds += seconds

    def compute_snapshot(self) -> np.ndarray:
        """Copy of the per-worker compute accumulators (raw seconds,
        not speed-scaled) since the last :meth:`end_epoch`.

        Read-only oracle for the stage profiler: two snapshots subtract
        to the compute each worker was charged during a stage.
        """
        return self._compute.copy()

    # ------------------------------------------------------------------
    # Communication accounting
    # ------------------------------------------------------------------
    def _charge(
        self, src_machine: int, dst_machine: int, num_bytes: int,
        category: str,
    ) -> None:
        self.meter.charge(src_machine, dst_machine, num_bytes, category)
        if self.telemetry.enabled and src_machine != dst_machine:
            # Mirror exactly what the meter recorded: intra-machine
            # messages are free there and must stay invisible here too.
            self.telemetry.metrics.inc(
                "comm_bytes", num_bytes, category=category
            )
            self.telemetry.metrics.inc("comm_messages", 1, category=category)

    def send_worker_to_worker(
        self, src: int, dst: int, num_bytes: int, category: str
    ) -> None:
        """Charge a worker-to-worker message (embeddings / gradients)."""
        self._charge(
            self.spec.worker_machine(src),
            self.spec.worker_machine(dst),
            num_bytes,
            category,
        )

    def fetch_from_store(
        self, worker: int, num_bytes: int, category: str
    ) -> None:
        """Charge a fetch from the shared graph store to ``worker``.

        Elastic recovery uses this when an adopter (or rejoiner) loads
        the feature shard of a partition it did not previously own.
        """
        self._charge(
            self.spec.storage_machine,
            self.spec.worker_machine(worker),
            num_bytes,
            category,
        )

    def send_worker_to_server(
        self, worker: int, server: int, num_bytes: int, category: str
    ) -> None:
        """Charge a worker-to-server message (gradient push)."""
        self._charge(
            self.spec.worker_machine(worker),
            self.spec.server_machine(server),
            num_bytes,
            category,
        )

    def send_server_to_worker(
        self, server: int, worker: int, num_bytes: int, category: str
    ) -> None:
        """Charge a server-to-worker message (parameter pull)."""
        self._charge(
            self.spec.server_machine(server),
            self.spec.worker_machine(worker),
            num_bytes,
            category,
        )

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------
    def end_epoch(self) -> EpochBreakdown:
        """Close the epoch: compute its breakdown and reset counters."""
        if self.spec.worker_speeds is None:
            compute = float(self._compute.max()) / self.spec.compute_speed
        else:
            # Heterogeneous cluster: the epoch waits for the slowest
            # worker after applying its individual speed.
            scaled = [
                self._compute[worker] / self.spec.speed_of(worker)
                for worker in range(self.spec.num_workers)
            ]
            compute = float(max(scaled))
        comm = self.meter.epoch_comm_seconds(
            self.spec.network, self.spec.num_machines
        )
        if self.spec.overlap_comm:
            total = max(compute, comm)
        else:
            total = compute + comm
        breakdown = EpochBreakdown(
            compute_seconds=compute,
            comm_seconds=comm,
            total_seconds=total,
            bytes_sent=self.meter.epoch_bytes(),
            category_bytes=self.meter.epoch_category_bytes(),
        )
        if self.telemetry.enabled:
            metrics = self.telemetry.metrics
            metrics.set_gauge("epoch_compute_seconds", compute)
            metrics.set_gauge("epoch_comm_seconds", comm)
            metrics.set_gauge("epoch_total_seconds", total)
            metrics.observe("epoch_seconds", total)
            metrics.inc("epochs_completed")
        self._epoch_history.append(breakdown)
        self.meter.reset_epoch()
        self._compute[:] = 0.0
        return breakdown

    @property
    def epoch_history(self) -> list[EpochBreakdown]:
        """Breakdowns of all completed epochs, oldest first."""
        return list(self._epoch_history)

    def total_seconds(self) -> float:
        """Sum of modelled epoch times so far."""
        return sum(epoch.total_seconds for epoch in self._epoch_history)
