"""Codec interface: every matrix message goes through one of these.

A codec turns a float32 matrix into an :class:`EncodedMatrix` with an
exact wire-size in bytes, and back. The cluster's traffic meter charges
``payload_bytes`` for every message, so wire size — not a modelled
estimate — is what the communication-time model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.compression.quantization import BucketQuantizer, QuantizedMatrix

__all__ = ["EncodedMatrix", "Codec", "IdentityCodec", "Float16Codec",
           "QuantizingCodec"]


@dataclass
class EncodedMatrix:
    """An encoded matrix plus its exact wire size."""

    payload: object
    payload_bytes: int
    shape: tuple[int, ...]
    codec_name: str


class Codec(Protocol):
    """Matrix encoder/decoder with byte-accurate size accounting."""

    name: str

    def encode(self, matrix: np.ndarray) -> EncodedMatrix: ...

    def decode(self, encoded: EncodedMatrix) -> np.ndarray: ...


_HEADER_BYTES = 24  # frame header + shape word (see cluster.serialize)


class IdentityCodec:
    """No compression: raw float32, the paper's ``Non-cp`` configuration."""

    name = "identity"

    def encode(self, matrix: np.ndarray) -> EncodedMatrix:
        data = np.ascontiguousarray(matrix, dtype=np.float32)
        return EncodedMatrix(
            payload=data,
            payload_bytes=_HEADER_BYTES + data.nbytes,
            shape=data.shape,
            codec_name=self.name,
        )

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        if encoded.codec_name != self.name:
            raise ValueError(f"not an identity payload: {encoded.codec_name}")
        return encoded.payload


class Float16Codec:
    """Half-precision truncation — a simple 2x lossy baseline."""

    name = "float16"

    def encode(self, matrix: np.ndarray) -> EncodedMatrix:
        data = np.ascontiguousarray(matrix, dtype=np.float16)
        return EncodedMatrix(
            payload=data,
            payload_bytes=_HEADER_BYTES + data.nbytes,
            shape=data.shape,
            codec_name=self.name,
        )

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        if encoded.codec_name != self.name:
            raise ValueError(f"not a float16 payload: {encoded.codec_name}")
        return encoded.payload.astype(np.float32)


class QuantizingCodec:
    """Bucket quantization behind the codec interface.

    The bit width is mutable on purpose: the Bit-Tuner adjusts ``bits``
    between iterations and the next ``encode`` picks it up.
    """

    def __init__(self, bits: int, table_mode: str = "table"):
        self._table_mode = table_mode
        self._quantizer = BucketQuantizer(bits, table_mode)

    @property
    def name(self) -> str:
        return f"quant{self._quantizer.bits}"

    @property
    def bits(self) -> int:
        return self._quantizer.bits

    @bits.setter
    def bits(self, value: int) -> None:
        if value != self._quantizer.bits:
            self._quantizer = BucketQuantizer(value, self._table_mode)

    def encode(
        self,
        matrix: np.ndarray,
        lo: float | None = None,
        hi: float | None = None,
    ) -> EncodedMatrix:
        quantized: QuantizedMatrix = self._quantizer.encode(matrix, lo=lo, hi=hi)
        return EncodedMatrix(
            payload=quantized,
            payload_bytes=quantized.payload_bytes(),
            shape=quantized.shape,
            codec_name=self.name,
        )

    def decode(self, encoded: EncodedMatrix) -> np.ndarray:
        if not isinstance(encoded.payload, QuantizedMatrix):
            raise ValueError(f"not a quantized payload: {encoded.codec_name}")
        return encoded.payload.decode()
