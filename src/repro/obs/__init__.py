"""Observability: per-iteration tracing, metrics and compression health.

The subsystem has three collectors behind one switch
(:class:`~repro.obs.config.ObsConfig`, off by default):

* :class:`~repro.obs.registry.MetricsRegistry` — labelled counters /
  gauges / histograms with per-epoch snapshot/reset semantics;
* :class:`~repro.obs.tracing.SpanTracer` — nested ``perf_counter``
  spans (``epoch > forward/backward > layer > halo_exchange/encode/
  decode/kernel/server_apply``), exportable as JSONL or Chrome trace
  via :mod:`repro.obs.export`;
* :class:`~repro.obs.health.CompressionHealthMonitor` — ReqEC-FP
  candidate-win fractions, Bit-Tuner width trajectory, and ResEC-BP
  residual norms checked against the Theorem 1 bound.

See ``docs/observability.md`` for usage.
"""

from repro.obs.config import OBS_DISABLED, ObsConfig
from repro.obs.export import (
    read_jsonl,
    span_to_record,
    spans_to_chrome,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.health import CompressionHealthMonitor, HealthReport, ResidualCheck
from repro.obs.registry import HistogramStat, MetricsRegistry, MetricsSnapshot
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry, TelemetryReport
from repro.obs.tracing import NullTracer, Span, SpanTracer, monotonic_now

__all__ = [
    "OBS_DISABLED",
    "ObsConfig",
    "read_jsonl",
    "span_to_record",
    "spans_to_chrome",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "CompressionHealthMonitor",
    "HealthReport",
    "ResidualCheck",
    "HistogramStat",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_TELEMETRY",
    "Telemetry",
    "TelemetryReport",
    "NullTracer",
    "Span",
    "SpanTracer",
    "monotonic_now",
]
