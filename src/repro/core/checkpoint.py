"""Checkpointing: persist trained parameters and training state.

Long full-batch runs on large graphs (the paper's OGBN-Papers takes
~90 s *per epoch* on its 6-machine cluster) need restartability. A
checkpoint stores the server-side parameters, the iteration counter, the
model/EC configuration fingerprints and the run history, in a single
``.npz`` archive.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer
from repro.faults.config import FaultConfig
from repro.obs.config import ObsConfig

__all__ = [
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "restore_trainer",
]

_FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint file is truncated, corrupt or otherwise unusable.

    Every deserialization failure surfaces as this one exception (with
    the offending path in the message) so callers — the CLI, crash
    recovery — can handle "bad checkpoint" without pattern-matching on
    zipfile/numpy/json internals.
    """


def _load_ec_config(fields: dict) -> ECGraphConfig:
    """Rebuild the config; ``asdict`` flattened the nested sub-configs."""
    obs = fields.get("obs")
    if isinstance(obs, dict):
        fields = dict(fields, obs=ObsConfig(**obs))
    faults = fields.get("faults")
    if isinstance(faults, dict):
        fields = dict(fields, faults=FaultConfig.from_dict(faults))
    return ECGraphConfig(**fields)


def save_checkpoint(
    trainer: ECGraphTrainer,
    path: str | Path,
    epoch: int,
    extra: dict | None = None,
) -> None:
    """Write the trainer's current parameters and metadata to ``path``.

    The write is atomic *and durable*: the archive is built in a
    temporary file in the same directory, fsynced, and moved into place
    with :func:`os.replace`, after which the containing directory is
    fsynced too — so neither a crash mid-save nor a power loss right
    after the rename can leave a truncated or missing checkpoint behind;
    the previous checkpoint (if any) survives intact.

    Args:
        trainer: A set-up trainer (its servers hold the parameters).
        path: Target ``.npz`` file; parent directories are created.
        epoch: Number of completed training iterations.
        extra: Optional JSON-serializable metadata to carry along.
    """
    trainer.setup()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = {
        "format_version": np.int64(_FORMAT_VERSION),
        "epoch": np.int64(epoch),
        "model_config_json": np.str_(json.dumps(asdict(trainer.model_config))),
        "ec_config_json": np.str_(json.dumps(asdict(trainer.config))),
        "extra_json": np.str_(json.dumps(extra or {})),
        "param_names": np.array(
            trainer.servers.parameter_names(), dtype=np.str_
        ),
    }
    for name in trainer.servers.parameter_names():
        payload[f"param/{name}"] = trainer.servers.get(name)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        _fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry (the rename) to stable storage.

    Best-effort: some filesystems refuse to fsync a directory handle;
    the data file itself is already synced, so that is not fatal.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def load_checkpoint(path: str | Path) -> dict:
    """Read a checkpoint into a plain dict.

    Returns keys: ``epoch``, ``model_config``, ``ec_config``, ``extra``
    and ``params`` (name -> array).

    Raises:
        FileNotFoundError: ``path`` does not exist.
        CheckpointError: the file is truncated, corrupt, from an
            unsupported format version, or missing required entries.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            version = int(archive["format_version"])
            if version != _FORMAT_VERSION:
                raise CheckpointError(
                    f"unsupported checkpoint version {version} in {path} "
                    f"(expected {_FORMAT_VERSION})"
                )
            names = [str(n) for n in archive["param_names"]]
            return {
                "epoch": int(archive["epoch"]),
                "model_config": ModelConfig(
                    **json.loads(str(archive["model_config_json"]))
                ),
                "ec_config": _load_ec_config(
                    json.loads(str(archive["ec_config_json"]))
                ),
                "extra": json.loads(str(archive["extra_json"])),
                "params": {name: archive[f"param/{name}"] for name in names},
            }
    except CheckpointError:
        raise
    except (
        zipfile.BadZipFile,
        OSError,
        EOFError,
        KeyError,
        TypeError,
        ValueError,
        json.JSONDecodeError,
    ) as exc:
        raise CheckpointError(
            f"corrupt or truncated checkpoint {path}: {exc}"
        ) from None


def restore_trainer(trainer: ECGraphTrainer, path: str | Path) -> int:
    """Load checkpointed parameters into ``trainer``; returns the epoch.

    The trainer's model configuration must match the checkpoint's —
    mismatched architectures fail loudly instead of silently truncating.
    """
    state = load_checkpoint(path)
    if state["model_config"] != trainer.model_config:
        raise ValueError(
            "checkpoint model config does not match the trainer: "
            f"{state['model_config']} vs {trainer.model_config}"
        )
    trainer.setup()
    for name, value in state["params"].items():
        trainer.servers.set(name, value)
    return state["epoch"]
