"""Ablation — bucket quantization vs the compression baselines.

The paper positions bucket quantization against the classic ML
compressors it cites: top-k sparsification [32], 1-bit quantization [31]
(and float16 as the trivial option). This bench runs each codec as the
*forward* halo compressor (backward stays raw so codecs are isolated)
and reports accuracy/traffic — evidence for why a value-domain bucket
scheme suits embeddings, whose information is dense across coordinates,
better than sparsification.
"""

from __future__ import annotations

from _helpers import HIDDEN, bench_graph, dataset_header, fmt_bytes, run_once

from repro.analysis.reporting import format_table
from repro.cluster.topology import ClusterSpec
from repro.compression import Float16Codec, OneBitCodec, TopKCodec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.policies import CodecPolicy
from repro.core.trainer import ECGraphTrainer

DATASET = "reddit"
EPOCHS = 50
WORKERS = 6


def _run(name, fp_policy=None, config=None):
    graph = bench_graph(DATASET)
    trainer = ECGraphTrainer(
        graph, ModelConfig(num_layers=2, hidden_dim=HIDDEN[DATASET]),
        ClusterSpec(num_workers=WORKERS),
        config or ECGraphConfig(fp_mode="raw", bp_mode="raw"),
        fp_policy=fp_policy,
    )
    return trainer.train(EPOCHS, name=name)


def _experiment():
    return [
        _run("raw"),
        _run("bucket-2", config=ECGraphConfig(
            fp_mode="compress", bp_mode="raw", fp_bits=2,
            adaptive_bits=False,
        )),
        _run("bucket-2+EC", config=ECGraphConfig(
            fp_mode="reqec", bp_mode="raw", fp_bits=2,
            adaptive_bits=False,
        )),
        _run("float16", fp_policy=CodecPolicy(Float16Codec())),
        # k=2 of the 16 hidden dims ~= 1 byte/dim: the same
        # budget class as 8-bit buckets, far above 2-bit buckets.
        _run("topk-2", fp_policy=CodecPolicy(TopKCodec(k=2))),
        _run("onebit", fp_policy=CodecPolicy(OneBitCodec())),
    ]


def test_ablation_codecs(benchmark):
    runs = run_once(benchmark, _experiment)
    print()
    print(dataset_header(DATASET))
    rows = [
        [run.name, run.best_test_accuracy(), fmt_bytes(run.total_bytes())]
        for run in runs
    ]
    print(format_table(
        ["forward codec", "best acc", "traffic"],
        rows,
        title="Forward-compression codecs compared (backward raw)",
    ))

    by_name = {run.name: run for run in runs}
    raw_acc = by_name["raw"].best_test_accuracy()
    # float16 is effectively lossless for embeddings.
    assert by_name["float16"].best_test_accuracy() >= raw_acc - 0.02
    # Compensated 2-bit buckets beat 1-bit sign quantization on accuracy
    # while remaining in the same traffic class.
    assert (
        by_name["bucket-2+EC"].best_test_accuracy()
        >= by_name["onebit"].best_test_accuracy() - 0.02
    )
    # Dense embeddings punish sparsification: top-k with a comparable
    # budget loses accuracy relative to compensated buckets.
    assert (
        by_name["bucket-2+EC"].best_test_accuracy()
        >= by_name["topk-2"].best_test_accuracy() - 0.02
    )
