"""ResEC-BP: responding-end error compensation for the backward pass
(paper section IV-C, Algorithms 5 and 6, Eqs. 11-12).

Classic error feedback applied to embedding-gradient messages: the
responding worker keeps, per channel, the residual ``delta`` left by the
previous iteration's quantization. Before compressing this iteration's
gradient rows it adds the residual back (Eq. 12), quantizes the
compensated rows — computing fresh (min, max) bounds first, since
gradients are not confined to a unit ball (Algorithm 6 lines 4-5) — and
stores the new residual (Eq. 11):

    delta_t = (G_t + delta_{t-1}) - C_bit[G_t + delta_{t-1}]

Over iterations the quantization errors telescope instead of compounding,
which is what Theorem 1 bounds.
"""

from __future__ import annotations


import numpy as np

from repro.compression.quantization import BucketQuantizer
from repro.core.messages import ChannelKey, ChannelMessage, ReceiveResult
from repro.obs.tracing import monotonic_now

__all__ = ["ResECPolicy"]


class ResECPolicy:
    """Backward-pass exchange with responding-end error feedback."""

    def __init__(self, bits: int, table_mode: str = "table"):
        self._quantizer = BucketQuantizer(bits, table_mode)
        # Optional CompressionHealthMonitor; the trainer attaches it when
        # telemetry is enabled so residual norms are checked (Theorem 1).
        self.health = None
        self._residual: dict[ChannelKey, np.ndarray] = {}

    @property
    def name(self) -> str:
        return f"resec{self._quantizer.bits}"

    @property
    def bits(self) -> int:
        return self._quantizer.bits

    def residual_norm(self, key: ChannelKey) -> float:
        """L2 norm of the stored residual (Theorem 1 instrumentation)."""
        residual = self._residual.get(key)
        return float(np.linalg.norm(residual)) if residual is not None else 0.0

    def respond(
        self,
        key: ChannelKey,
        rows: np.ndarray,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ChannelMessage:
        rows = np.ascontiguousarray(rows, dtype=np.float32)
        start = monotonic_now()
        residual = self._residual.get(key)
        if rows_idx is None:
            if residual is None or residual.shape != rows.shape:
                residual = np.zeros_like(rows)
            compensated = rows + residual
            quantized = self._quantizer.encode(compensated)
            new_residual = compensated - quantized.decode()
            self._residual[key] = new_residual
            if self.health is not None:
                self.health.record_residual(
                    key.layer,
                    float(np.linalg.norm(new_residual)),
                    float(np.linalg.norm(rows)),
                    self._quantizer.bits,
                )
        else:
            # Sampled training: residual state spans the channel's full
            # vertex list; only the requested rows participate this round.
            if residual is None:
                raise RuntimeError(
                    f"channel {key} must be primed with prime_residual() "
                    "before sampled responds"
                )
            compensated = rows + residual[rows_idx]
            quantized = self._quantizer.encode(compensated)
            residual[rows_idx] = compensated - quantized.decode()
            if self.health is not None:
                # The full-channel residual is what Theorem 1 bounds.
                self.health.record_residual(
                    key.layer,
                    float(np.linalg.norm(residual)),
                    float(np.linalg.norm(rows)),
                    self._quantizer.bits,
                )
        elapsed = monotonic_now() - start
        return ChannelMessage(
            payload=quantized,
            nbytes=quantized.payload_bytes(),
            codec_seconds=elapsed,
        )

    def prime_residual(self, key: ChannelKey, num_rows: int, dim: int) -> None:
        """Allocate full-channel residual state (sampled training only)."""
        self._residual[key] = np.zeros((num_rows, dim), dtype=np.float32)

    def receive(
        self,
        key: ChannelKey,
        message: ChannelMessage,
        t: int,
        rows_idx: np.ndarray | None = None,
    ) -> ReceiveResult:
        start = monotonic_now()
        rows = message.payload.decode()
        return ReceiveResult(
            rows=rows, codec_seconds=monotonic_now() - start
        )

    # ------------------------------------------------------------------
    # Fault tolerance (driven by the NAC)
    # ------------------------------------------------------------------
    def on_delivery_failure(
        self,
        key: ChannelKey,
        message: ChannelMessage,
        rows_idx: np.ndarray | None = None,
    ) -> bool:
        """Fold an undeliverable gradient into the channel residual.

        Error feedback makes drop tolerance nearly free: the decoded
        payload the requester never received is added to ``delta``, so
        the next iteration's compensated message re-ships the lost
        information instead of silently discarding it (the same
        telescoping argument as Eq. 11).
        """
        lost = message.payload.decode()
        residual = self._residual.get(key)
        if rows_idx is None:
            if residual is None or residual.shape != lost.shape:
                self._residual[key] = lost.astype(np.float32)
            else:
                residual += lost
        else:
            if residual is None:
                return False
            residual[rows_idx] += lost
        return True

    # ------------------------------------------------------------------
    # Elastic membership (driven by the PartitionReassigner)
    # ------------------------------------------------------------------
    def has_residual(self, key: ChannelKey) -> bool:
        """True when channel state exists (primed or accumulated)."""
        return key in self._residual

    def export_residuals(
        self, workers
    ) -> list[tuple[ChannelKey, np.ndarray]]:
        """Remove and return residuals on channels touching ``workers``.

        Used on membership change: channels touching a worker whose
        vertex set moved no longer exist, but their residuals are queued
        gradient information — the reassigner remaps the rows onto the
        replacement channels instead of silently dropping the gap. Keys
        come out sorted so the carry is deterministic.
        """
        targets = set(workers)
        stale = sorted(
            key for key in self._residual
            if key.responder in targets or key.requester in targets
        )
        return [(key, self._residual.pop(key)) for key in stale]

    def seed_residual(self, key: ChannelKey, residual: np.ndarray) -> None:
        """Install a carried residual on a (possibly new) channel."""
        self._residual[key] = np.ascontiguousarray(
            residual, dtype=np.float32
        )

    def invalidate_worker(self, worker: int) -> None:
        """Drop residuals on channels touching ``worker`` (crash
        recovery with ``reset_residuals=True``): the rebuilt process
        starts with ``delta = 0``, exactly the Theorem-1 initial state.
        """
        stale = [
            key for key in self._residual
            if worker in (key.responder, key.requester)
        ]
        for key in stale:
            del self._residual[key]

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._residual.clear()
