"""Multi-process execution backend (``ECGraphConfig.execution="multiprocess"``).

The synchronous engine runs every worker inline in one GIL-bound
process; this package runs the worker *kernels* in real OS processes:

* :mod:`repro.mp.store` — :class:`~repro.mp.store.SharedStore`, named
  ``multiprocessing.shared_memory`` blocks with a per-array header
  (magic / dtype / shape / generation) exposing zero-copy numpy views
  to every process;
* :mod:`repro.mp.worker` — the child-process main loop: a kernel
  replica of the model backend bound to its one worker state, driven by
  a strict request→reply pipe protocol;
* :mod:`repro.mp.supervisor` — the
  :class:`~repro.mp.supervisor.ProcessExecutor` that the engine's
  executor seam plugs in: it spawns/reaps the worker processes, runs
  the BSP epoch protocol over the pipes, backs the halo transport's
  session outputs with shared-memory blocks
  (:class:`~repro.mp.supervisor.ProcessChannelBuffers`), and turns
  injected worker crashes into real ``SIGKILL`` + respawn.

See ``docs/execution.md`` for the process model and the shared-memory
layout.
"""

from repro.mp.store import SharedStore
from repro.mp.supervisor import ProcessChannelBuffers, ProcessExecutor

__all__ = ["SharedStore", "ProcessChannelBuffers", "ProcessExecutor"]
