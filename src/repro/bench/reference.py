"""Reference bit-packing kernels, kept for benchmarks and cross-checks.

These are the original implementations of
:func:`repro.compression.quantization.pack_bits` /
:func:`~repro.compression.quantization.unpack_bits`: they expand every
value into an ``(n, bits)`` bit matrix and let numpy's ``packbits`` /
a matrix-vector product do the rest. Correct and obvious, but the
intermediate bit matrix costs ``8x`` the packed size in memory traffic,
which made them the hottest kernels in a training step.

The production kernels compute the same little-endian-bit-first layout
arithmetically. Tests assert byte-identical output against these
references for every width, and the bench suite reports the speedup
per width (``BENCH_core.json``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["pack_bits_reference", "unpack_bits_reference"]


def pack_bits_reference(values: np.ndarray, bits: int) -> np.ndarray:
    """Original bit-matrix ``pack_bits``; layout-identical, slower."""
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    flat = np.ascontiguousarray(values, dtype=np.uint32).ravel()
    if flat.size and int(flat.max()) >= (1 << bits):
        raise ValueError(f"value {int(flat.max())} does not fit in {bits} bits")
    shifts = np.arange(bits, dtype=np.uint32)
    bit_matrix = ((flat[:, None] >> shifts) & 1).astype(np.uint8)
    return np.packbits(bit_matrix.ravel(), bitorder="little")


def unpack_bits_reference(
    buffer: np.ndarray, bits: int, count: int
) -> np.ndarray:
    """Original bit-matrix ``unpack_bits``; layout-identical, slower."""
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    raw = np.unpackbits(
        np.ascontiguousarray(buffer, dtype=np.uint8),
        count=count * bits,
        bitorder="little",
    )
    bit_matrix = raw.reshape(count, bits).astype(np.uint32)
    powers = (np.uint32(1) << np.arange(bits, dtype=np.uint32))
    return bit_matrix @ powers
