"""Repository self-consistency guards.

Cheap checks that keep the documentation honest as the code evolves:
every benchmark is listed in the README's reproduction table, every
example compiles, and every public subpackage is mentioned in DESIGN.md.
"""

import py_compile
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def _benchmark_files():
    return sorted(
        p.name for p in (REPO / "benchmarks").glob("test_*.py")
    )


def _example_files():
    return sorted((REPO / "examples").glob("*.py"))


class TestReadme:
    def test_readme_lists_every_benchmark(self):
        readme = (REPO / "README.md").read_text()
        for name in _benchmark_files():
            assert name in readme, f"README reproduction table misses {name}"

    def test_readme_lists_every_example(self):
        readme = (REPO / "README.md").read_text()
        for path in _example_files():
            assert path.name in readme, f"README misses example {path.name}"


class TestDesignDoc:
    def test_design_mentions_every_subpackage(self):
        design = (REPO / "DESIGN.md").read_text()
        packages = sorted(
            p.name for p in (REPO / "src" / "repro").iterdir()
            if p.is_dir() and (p / "__init__.py").exists()
        )
        for package in packages:
            assert f"repro/{package}" in design or f"repro.{package}" in design, (
                f"DESIGN.md does not mention subpackage {package}"
            )

    def test_experiments_covers_every_paper_artifact(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in ("Table II", "Fig. 6", "Fig. 7", "Fig. 8",
                         "Table IV", "Table V", "Fig. 9", "Fig. 10",
                         "Fig. 11", "Theorem 1"):
            assert artifact in experiments, (
                f"EXPERIMENTS.md misses {artifact}"
            )


class TestExamplesCompile:
    @pytest.mark.parametrize(
        "path", _example_files(), ids=lambda p: p.name
    )
    def test_example_compiles(self, path, tmp_path):
        py_compile.compile(
            str(path), cfile=str(tmp_path / (path.name + "c")), doraise=True
        )


class TestPublicImports:
    def test_top_level_all_resolves(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module", [
        "repro.nn", "repro.graph", "repro.partition", "repro.cluster",
        "repro.compression", "repro.core", "repro.baselines",
        "repro.analysis",
    ])
    def test_subpackage_all_resolves(self, module):
        import importlib

        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"
