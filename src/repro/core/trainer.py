"""The EC-Graph distributed full-batch trainer (paper Algorithms 1-2).

One trainer object runs the whole simulated cluster: it partitions the
graph, builds the per-worker states, registers the model on the parameter
servers, and then drives synchronous training iterations:

* forward: per layer, workers pull the layer's parameters, exchange halo
  embeddings through the configured forward policy (raw / compressed /
  ReqEC-FP / delayed), and run the local GCN kernel;
* backward: per layer, workers exchange halo embedding-gradients through
  the backward policy (raw / compressed / ResEC-BP / delayed), accumulate
  weight/bias gradient shares and push them; servers apply Adam.

The same class also covers the baselines that differ only in exchange
policy (Non-cp, Cp-fp/Cp-bp, DistGNN's delayed aggregation) and the
single-machine standalone configuration (one worker = no halo at all).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.cluster.engine import ClusterRuntime
from repro.cluster.param_server import ParameterServerGroup
from repro.cluster.topology import ClusterSpec
from repro.core.bit_tuner import BitTuner
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.gcn_math import (
    bias_gradient,
    layer_backward_inputs,
    layer_forward,
    weight_gradient,
)
from repro.core.messages import RawPolicy
from repro.core.models import GNNParameters, bias_name, build_parameters, weight_name
from repro.core.nac import NeighborAccessController
from repro.core.policies import CompressPolicy, DelayedPolicy
from repro.core.reqec_fp import ReqECPolicy
from repro.core.resec_bp import ResECPolicy
from repro.core.results import ConvergenceRun, EpochResult
from repro.core.worker import WorkerState, build_worker_states
from repro.faults.injector import FaultCounters, FaultInjector
from repro.graph.attributed import AttributedGraph
from repro.graph.normalize import normalized_adjacency
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import make_optimizer
from repro.obs.telemetry import Telemetry
from repro.obs.tracing import monotonic_now
from repro.partition import make_partitioner
from repro.partition.base import Partition

__all__ = ["ECGraphTrainer"]


def _make_fp_policy(config: ECGraphConfig, tuner: BitTuner):
    if config.fp_mode == "raw":
        return RawPolicy()
    if config.fp_mode == "compress":
        return CompressPolicy(config.fp_bits, config.table_mode)
    if config.fp_mode == "reqec":
        return ReqECPolicy(
            tuner,
            trend_period=config.trend_period,
            granularity=config.selector_granularity,
            table_mode=config.table_mode,
        )
    return DelayedPolicy(config.delayed_rounds)


def _make_bp_policy(config: ECGraphConfig):
    if config.bp_mode == "raw":
        return RawPolicy()
    if config.bp_mode == "compress":
        return CompressPolicy(config.bp_bits, config.table_mode)
    if config.bp_mode == "resec":
        return ResECPolicy(config.bp_bits, config.table_mode)
    return DelayedPolicy(config.delayed_rounds)


class ECGraphTrainer:
    """Distributed full-batch GCN/GraphSAGE training on a simulated cluster."""

    def __init__(
        self,
        graph: AttributedGraph,
        model_config: ModelConfig,
        cluster_spec: ClusterSpec,
        config: ECGraphConfig | None = None,
        partitioner: str = "hash",
        partition: Partition | None = None,
        fp_policy=None,
        bp_policy=None,
    ):
        """Args:
        graph: Attributed input graph.
        model_config: GNN architecture.
        cluster_spec: Simulated cluster shape.
        config: EC-Graph pipeline settings (defaults reproduce the
            paper's full configuration).
        partitioner: Partitioner name used when ``partition`` is None.
        partition: Pre-computed partition (reused across benchmark runs).
        fp_policy / bp_policy: Explicit exchange-policy objects that
            override the config's ``fp_mode``/``bp_mode`` (used to plug
            in baseline codecs via :class:`~repro.core.policies.CodecPolicy`).
        """
        self.graph = graph
        self.model_config = model_config
        self.spec = cluster_spec
        self.config = config or ECGraphConfig()
        self.obs = Telemetry(self.config.obs)
        self._partitioner_name = partitioner
        self._given_partition = partition

        self.runtime: ClusterRuntime | None = None
        self.servers: ParameterServerGroup | None = None
        self.workers: list[WorkerState] = []
        self.params: GNNParameters | None = None
        self.tuner: BitTuner | None = None
        self.nac: NeighborAccessController | None = None
        self.partition: Partition | None = None
        self._fp_policy = fp_policy
        self._bp_policy = bp_policy
        self._fp_policy_override = fp_policy is not None
        self._bp_policy_override = bp_policy is not None
        self._preprocessing_seconds = 0.0
        self._global_train_count = 0
        self._setup_done = False
        self._lr_schedule = None
        self._injector: FaultInjector | None = None
        self._param_snapshot: tuple[int, dict[str, np.ndarray]] | None = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Partition, build workers, register parameters, prime caches."""
        if self._setup_done:
            return
        start = monotonic_now()

        if self._given_partition is not None:
            self.partition = self._given_partition
        else:
            partitioner = make_partitioner(
                self._partitioner_name, seed=self.config.seed
            )
            self.partition = partitioner.partition(
                self.graph.adjacency, self.spec.num_workers
            )
        if self.partition.num_parts != self.spec.num_workers:
            raise ValueError(
                f"partition has {self.partition.num_parts} parts but the "
                f"cluster has {self.spec.num_workers} workers"
            )

        scheme = "gcn" if self.model_config.model == "gcn" else "row"
        normalized = normalized_adjacency(self.graph.adjacency, scheme)
        self.workers = build_worker_states(self.graph, normalized, self.partition)

        self.runtime = ClusterRuntime(self.spec, telemetry=self.obs)
        self.servers = ParameterServerGroup(
            self.runtime,
            lambda: make_optimizer(
                self.config.optimizer,
                self.config.learning_rate,
                weight_decay=self.config.weight_decay,
            ),
            reduce="sum",
        )
        self.params = build_parameters(
            self.model_config,
            self.graph.feature_dim,
            self.graph.num_classes,
            seed=self.config.seed,
        )
        for name, tensor in self.params.tensors.items():
            self.servers.register(name, tensor.copy())

        self.tuner = BitTuner(
            initial_bits=self.config.fp_bits,
            raise_threshold=self.config.tuner_raise,
            lower_threshold=self.config.tuner_lower,
            enabled=self.config.adaptive_bits,
        )
        if not self._fp_policy_override:
            self._fp_policy = _make_fp_policy(self.config, self.tuner)
        if not self._bp_policy_override:
            self._bp_policy = _make_bp_policy(self.config)
        self.nac = NeighborAccessController(
            self.runtime, self.workers, self.config.codec_speedup,
            buffer_pool=self.config.halo_buffer_pool,
            threads=self.config.exchange_threads,
        )
        if self.config.faults.enabled:
            self._injector = FaultInjector(self.config.faults)
            self.runtime.fault_injector = self._injector
            self.nac.injector = self._injector
        self._wire_telemetry()

        self._global_train_count = int(self.graph.train_mask.sum())
        if self._global_train_count == 0:
            raise ValueError("graph has no training vertices")

        if self.config.cache_first_hop:
            self._cache_halo_features()

        self._preprocessing_seconds = (
            monotonic_now() - start + self.partition.seconds
        )
        # Feature-cache traffic happens once, in preprocessing: convert
        # the charged bytes into time and fold them in.
        cache_bytes = self.runtime.meter.epoch_bytes()
        if cache_bytes:
            self._preprocessing_seconds += self.runtime.meter.epoch_comm_seconds(
                self.spec.network, self.spec.num_machines
            )
            self.runtime.end_epoch()  # drain the setup epoch
            self.runtime._epoch_history.clear()
            # Keep the metrics epoch scope aligned with the meter's:
            # setup traffic belongs to preprocessing, not to epoch 0
            # (it stays in the lifetime scope either way).
            self.obs.metrics.reset_epoch()
        self._setup_done = True

    def _wire_telemetry(self) -> None:
        """Attach the health monitor and topology gauges (enabled only)."""
        if not self.obs.enabled:
            return
        if self.obs.health is not None:
            self.obs.health.set_model(self.model_config.num_layers)
            self.tuner.observer = self.obs.health.record_bits
            for policy in (self._fp_policy, self._bp_policy):
                if hasattr(policy, "health"):
                    policy.health = self.obs.health
        for state in self.workers:
            for name, value in state.stats().items():
                self.obs.metrics.set_gauge(
                    f"worker_{name}", value, worker=state.worker_id
                )

    def _cache_halo_features(self) -> None:
        """The paper's first basic optimization: cache remote 1-hop
        neighbour features on each worker once, before training."""
        for state in self.workers:
            halo = np.zeros(
                (state.num_halo, self.graph.feature_dim), dtype=np.float32
            )
            for owner, slots in state.halo_slots.items():
                responder = self.workers[owner]
                rows = responder.features[responder.serves[state.worker_id]]
                halo[slots] = rows
                self.runtime.send_worker_to_worker(
                    owner, state.worker_id, rows.nbytes + 16, "feature_cache"
                )
            state.halo_features = halo

    # ------------------------------------------------------------------
    # Hooks overridden by the sampling trainer
    # ------------------------------------------------------------------
    def _adjacency(self, state: WorkerState, layer: int):
        """Adjacency rows used by ``state`` at ``layer`` (1-based)."""
        return state.a_local

    def _exchange_subset(
        self, layer: int, direction: str
    ) -> dict[tuple[int, int], np.ndarray] | None:
        """Per-channel row subsets for a sampled exchange (None = all)."""
        del layer, direction
        return None

    def _on_epoch_start(self, t: int) -> None:
        """Called before each iteration (sampling hooks)."""
        del t

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def _forward(self, t: int) -> tuple[float, dict[str, tuple[int, int]]]:
        """Run the forward pass; returns (loss, per-mask correct/count)."""
        num_layers = self.params.num_layers
        for state in self.workers:
            state.reset_iteration(num_layers)

        counters = {"train": [0, 0], "val": [0, 0], "test": [0, 0]}
        total_loss = 0.0

        for layer in range(1, num_layers + 1):
            with self.obs.span("layer", layer=layer, direction="fp"):
                weight_key = weight_name(layer - 1)
                bias_key = bias_name(layer - 1)
                pulled: dict[int, dict[str, np.ndarray]] = {}
                names = self.params.layer_param_names(layer - 1)
                for state in self.workers:
                    pulled[state.worker_id] = self.servers.pull(
                        state.worker_id, names
                    )

                halos = self._forward_halos(layer, t)

                with self.obs.span("kernel", layer=layer, direction="fp"):
                    for state in self.workers:
                        i = state.worker_id
                        weight = pulled[i][weight_key]
                        bias = pulled[i].get(bias_key)
                        prev = (
                            state.features
                            if layer == 1
                            else state.local_output(layer - 1)
                        )
                        with self.runtime.worker_compute(i):
                            h_cat = np.concatenate([prev, halos[i]], axis=0)
                            cache = layer_forward(
                                self._adjacency(state, layer),
                                h_cat,
                                weight,
                                bias,
                                self.params.activation,
                                is_last=(layer == num_layers),
                                transform_first=(
                                    None
                                    if self.config.transform_first
                                    else False
                                ),
                            )
                        state.caches[layer] = cache

        # Loss and metrics from the final logits; gradients are scaled by
        # the *global* train count so server-side summation is exact.
        with self.obs.span("loss"):
            for state in self.workers:
                logits = state.caches[num_layers].output
                with self.runtime.worker_compute(state.worker_id):
                    result = softmax_cross_entropy(
                        logits, state.labels, state.train_mask
                    )
                    local = int(state.train_mask.sum())
                    scale = local / self._global_train_count if local else 0.0
                    # result.grad is a mean over local train vertices;
                    # rescale to a global mean so summing worker pushes is
                    # exact.
                    state.grad_rows[num_layers] = (result.grad * scale).astype(
                        np.float32
                    )
                    total_loss += result.loss * scale
                    counters["train"][0] += result.correct
                    counters["train"][1] += result.count
                    predictions = logits.argmax(axis=1)
                    for split, mask in (
                        ("val", state.val_mask),
                        ("test", state.test_mask),
                    ):
                        counters[split][0] += int(
                            (predictions[mask] == state.labels[mask]).sum()
                        )
                        counters[split][1] += int(mask.sum())

        if self.config.fp_mode == "reqec":
            for pair, proportion in self.nac.last_proportions().items():
                self.tuner.update(pair, proportion)

        summary = {
            split: (correct, count)
            for split, (correct, count) in counters.items()
        }
        return total_loss, summary

    def _forward_halos(self, layer: int, t: int) -> list[np.ndarray]:
        """Halo embeddings feeding ``layer`` (H^{layer-1} remote rows)."""
        if layer == 1:
            if self.config.cache_first_hop:
                return [state.halo_features for state in self.workers]
            return self.nac.exchange(
                layer=0,
                t=t,
                rows_of=lambda s: s.features,
                policy=self._fp_policy,
                category="fp_embeddings",
                dim=self.graph.feature_dim,
                subset=self._exchange_subset(1, "fp"),
            )
        return self.nac.exchange(
            layer=layer - 1,
            t=t,
            rows_of=lambda s, _l=layer: s.local_output(_l - 1),
            policy=self._fp_policy,
            category="fp_embeddings",
            dim=self.params.dims[layer - 1],
            subset=self._exchange_subset(layer, "fp"),
        )

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def _backward(self, t: int) -> None:
        num_layers = self.params.num_layers
        grads: dict[int, dict[str, np.ndarray]] = {
            state.worker_id: {} for state in self.workers
        }

        for layer in range(num_layers, 0, -1):
            with self.obs.span("layer", layer=layer, direction="bp"):
                weight_key = weight_name(layer - 1)
                with self.obs.span("kernel", layer=layer, direction="bp",
                                   stage="weight_grad"):
                    for state in self.workers:
                        i = state.worker_id
                        g_local = state.grad_rows[layer]
                        cache = state.caches[layer]
                        with self.runtime.worker_compute(i):
                            grads[i][weight_key] = weight_gradient(
                                cache, self._adjacency(state, layer), g_local
                            )
                            if self.params.use_bias:
                                grads[i][bias_name(layer - 1)] = bias_gradient(
                                    g_local
                                )

                if layer > 1:
                    halos = self.nac.exchange(
                        layer=layer,
                        t=t,
                        rows_of=lambda s, _l=layer: s.grad_rows[_l],
                        policy=self._bp_policy,
                        category="bp_gradients",
                        dim=self.params.dims[layer],
                        subset=self._exchange_subset(layer, "bp"),
                    )
                    weight = self.servers.get(weight_name(layer - 1))
                    with self.obs.span("kernel", layer=layer, direction="bp",
                                       stage="input_grad"):
                        for state in self.workers:
                            i = state.worker_id
                            with self.runtime.worker_compute(i):
                                g_cat = np.concatenate(
                                    [state.grad_rows[layer], halos[i]], axis=0
                                )
                                state.grad_rows[layer - 1] = (
                                    layer_backward_inputs(
                                        self._adjacency(state, layer),
                                        g_cat,
                                        weight,
                                        state.caches[layer - 1].pre_activation,
                                        self.params.activation,
                                    )
                                )

        for state in self.workers:
            self.servers.push(state.worker_id, grads[state.worker_id])
        self.servers.apply_updates()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_epoch(self, t: int) -> EpochResult:
        """One synchronous training iteration (forward + backward)."""
        self.setup()
        if self._injector is not None:
            self._injector.start_epoch(t)
            crashed = self._injector.take_crashes(t)
            if crashed:
                self._recover_workers(crashed)
        if self._lr_schedule is not None:
            self.servers.set_learning_rate(self._lr_schedule(t))
        with self.obs.span("epoch", epoch=t):
            self._on_epoch_start(t)
            with self.obs.span("forward", epoch=t):
                loss, counters = self._forward(t)
            with self.obs.span("backward", epoch=t):
                self._backward(t)
        breakdown = self.runtime.end_epoch()
        if self._injector is not None:
            self._maybe_checkpoint(t)

        def _ratio(split: str) -> float:
            correct, count = counters[split]
            return correct / count if count else 0.0

        telemetry = None
        if self.obs.enabled:
            self.obs.metrics.set_gauge("loss", loss)
            self.obs.metrics.set_gauge("train_accuracy", _ratio("train"))
            self.obs.metrics.set_gauge("val_accuracy", _ratio("val"))
            telemetry = self.obs.end_epoch(t)

        return EpochResult(
            epoch=t,
            loss=loss,
            train_accuracy=_ratio("train"),
            val_accuracy=_ratio("val"),
            test_accuracy=_ratio("test"),
            breakdown=breakdown,
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------
    # Fault tolerance: checkpointed crash recovery
    # ------------------------------------------------------------------
    @property
    def fault_counters(self) -> FaultCounters | None:
        """Injected-fault and tolerance counters (None when disabled)."""
        return self._injector.counters if self._injector else None

    def _maybe_checkpoint(self, t: int) -> None:
        """Auto-checkpoint the server parameters after epoch ``t``."""
        faults = self.config.faults
        if (t + 1) % faults.checkpoint_every != 0:
            return
        if faults.checkpoint_dir is not None:
            from repro.core.checkpoint import save_checkpoint

            path = Path(faults.checkpoint_dir) / "latest.npz"
            save_checkpoint(self, path, epoch=t + 1)
        self._param_snapshot = (t + 1, self.servers.state_dict())

    def _recover_workers(self, crashed: list[int]) -> None:
        """Rebuild crashed workers and resynchronize the exchange state.

        The static partition state (adjacency rows, feature shards,
        request/serve plans) rebuilds from the worker's local storage —
        charged as ``recovery_seconds`` of stall plus the re-fetch of
        the first-hop feature cache — while the server-side parameters
        roll back to the latest checkpoint (``restore_params``) and the
        error-compensation channel state touching the dead worker is
        zeroed (``reset_residuals``), restoring the Theorem-1 initial
        condition ``delta = 0`` for those channels.
        """
        faults = self.config.faults
        counters = self._injector.counters
        for worker in crashed:
            counters.crashes += 1
            if self.obs.enabled:
                self.obs.metrics.inc("fault_crashes", worker=worker)
            self.runtime.add_stall(worker, faults.recovery_seconds)
            state = self.workers[worker]
            rebuild_halo = (
                self.config.cache_first_hop
                and state.halo_features is not None
            )
            state.crash_reset(self.params.num_layers)
            if rebuild_halo:
                halo = np.zeros(
                    (state.num_halo, self.graph.feature_dim),
                    dtype=np.float32,
                )
                for owner, slots in state.halo_slots.items():
                    responder = self.workers[owner]
                    rows = responder.features[responder.serves[worker]]
                    halo[slots] = rows
                    self.runtime.send_worker_to_worker(
                        owner, worker, rows.nbytes + 16, "recovery"
                    )
                state.halo_features = halo
            if faults.reset_residuals:
                for policy in (self._fp_policy, self._bp_policy):
                    invalidate = getattr(policy, "invalidate_worker", None)
                    if invalidate is not None:
                        invalidate(worker)
            self.nac.invalidate_worker(worker)
        if faults.restore_params and self._restore_latest_checkpoint():
            counters.params_rolled_back += 1
            if self.obs.enabled:
                self.obs.metrics.inc("fault_params_rolled_back")

    def _restore_latest_checkpoint(self) -> bool:
        """Load the newest parameter checkpoint into the servers."""
        faults = self.config.faults
        if faults.checkpoint_dir is not None:
            from repro.core.checkpoint import CheckpointError, load_checkpoint

            path = Path(faults.checkpoint_dir) / "latest.npz"
            try:
                state = load_checkpoint(path)
            except (FileNotFoundError, CheckpointError):
                state = None
            if state is not None:
                for name, value in state["params"].items():
                    self.servers.set(name, value)
                return True
        if self._param_snapshot is not None:
            _, params = self._param_snapshot
            for name, value in params.items():
                self.servers.set(name, value.copy())
            return True
        return False

    def train(
        self,
        num_epochs: int,
        patience: int | None = None,
        target_accuracy: float | None = None,
        name: str | None = None,
        lr_schedule=None,
    ) -> ConvergenceRun:
        """Train for up to ``num_epochs`` iterations.

        Args:
            num_epochs: Maximum iterations ``T``.
            patience: Stop when validation accuracy has not improved for
                this many epochs (None disables early stopping).
            target_accuracy: Stop as soon as test accuracy reaches this.
            name: Run label for reports.
            lr_schedule: Optional ``epoch -> learning rate`` callable
                (see :mod:`repro.nn.lr_schedule`); ``None`` keeps the
                configured constant rate, the paper's setting.
        """
        self._lr_schedule = lr_schedule
        self.setup()
        run = ConvergenceRun(
            name=name or f"ecgraph[{self.config.fp_mode}/{self.config.bp_mode}]",
            preprocessing_seconds=self._preprocessing_seconds,
            meta={
                "fp_mode": self.config.fp_mode,
                "bp_mode": self.config.bp_mode,
                "fp_bits": self.config.fp_bits,
                "bp_bits": self.config.bp_bits,
                "num_workers": self.spec.num_workers,
                "dataset": self.graph.name,
                "num_layers": self.model_config.num_layers,
            },
        )
        best_val = -1.0
        stale = 0
        for t in range(num_epochs):
            result = self.run_epoch(t)
            run.epochs.append(result)
            if target_accuracy is not None and (
                result.test_accuracy >= target_accuracy
            ):
                break
            if patience is not None:
                if result.val_accuracy > best_val + 1e-6:
                    best_val = result.val_accuracy
                    stale = 0
                else:
                    stale += 1
                    if stale >= patience:
                        break
        run.final_test_accuracy = self.evaluate_exact()["test"]
        if self.obs.enabled:
            run.telemetry = self.obs.report()
        return run

    def evaluate_exact(self) -> dict[str, float]:
        """Accuracy of the current parameters with exact communication.

        Runs one raw-policy forward pass on a scratch runtime so neither
        traffic accounting nor compensation state is disturbed — this is
        the Table V measurement.
        """
        self.setup()
        scratch_runtime = ClusterRuntime(self.spec)
        scratch_nac = NeighborAccessController(
            scratch_runtime, self.workers, self.config.codec_speedup
        )
        raw = RawPolicy()
        num_layers = self.params.num_layers

        outputs: list[np.ndarray] = [state.features for state in self.workers]
        for layer in range(1, num_layers + 1):
            weight = self.servers.get(weight_name(layer - 1))
            bias = (
                self.servers.get(bias_name(layer - 1))
                if self.params.use_bias
                else None
            )
            if layer == 1 and self.config.cache_first_hop:
                halos = [state.halo_features for state in self.workers]
            else:
                halos = scratch_nac.exchange(
                    layer=layer - 1,
                    t=0,
                    rows_of=lambda s: outputs[s.worker_id],
                    policy=raw,
                    category="eval",
                    dim=outputs[0].shape[1],
                )
            new_outputs = []
            for state in self.workers:
                h_cat = np.concatenate(
                    [outputs[state.worker_id], halos[state.worker_id]], axis=0
                )
                cache = layer_forward(
                    state.a_local,
                    h_cat,
                    weight,
                    bias,
                    self.params.activation,
                    is_last=(layer == num_layers),
                )
                new_outputs.append(cache.output)
            outputs = new_outputs

        metrics = {}
        for split, mask_of in (
            ("train", lambda s: s.train_mask),
            ("val", lambda s: s.val_mask),
            ("test", lambda s: s.test_mask),
        ):
            correct = count = 0
            for state in self.workers:
                mask = mask_of(state)
                predictions = outputs[state.worker_id].argmax(axis=1)
                correct += int((predictions[mask] == state.labels[mask]).sum())
                count += int(mask.sum())
            metrics[split] = correct / count if count else 0.0
        return metrics

    @property
    def preprocessing_seconds(self) -> float:
        """Setup cost: partitioning, worker build, feature caching."""
        return self._preprocessing_seconds
