"""Microbenchmarks — codec throughput and message sizes.

Classic pytest-benchmark timing (multiple rounds) for the quantizer
kernels that sit on EC-Graph's critical path, plus a size table comparing
every codec at a representative embedding-matrix shape. Not a paper
table, but the numbers explain the codec_speedup substitution documented
in DESIGN.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.compression.codec import Float16Codec, IdentityCodec, QuantizingCodec
from repro.compression.onebit import OneBitCodec
from repro.compression.quantization import BucketQuantizer, pack_bits, unpack_bits
from repro.compression.topk import TopKCodec

ROWS, DIM = 2048, 128


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(0)
    return rng.standard_normal((ROWS, DIM)).astype(np.float32)


@pytest.mark.parametrize("bits", [2, 8])
def test_quantizer_encode_throughput(benchmark, matrix, bits):
    quantizer = BucketQuantizer(bits)
    encoded = benchmark(quantizer.encode, matrix)
    assert encoded.payload_bytes() < matrix.nbytes


@pytest.mark.parametrize("bits", [2, 8])
def test_quantizer_decode_throughput(benchmark, matrix, bits):
    quantizer = BucketQuantizer(bits)
    encoded = quantizer.encode(matrix)
    decoded = benchmark(encoded.decode)
    assert decoded.shape == matrix.shape


def test_pack_unpack_roundtrip_throughput(benchmark, matrix):
    rng = np.random.default_rng(1)
    ids = rng.integers(0, 16, size=ROWS * DIM, dtype=np.uint32)

    def roundtrip():
        return unpack_bits(pack_bits(ids, 4), 4, ids.size)

    out = benchmark(roundtrip)
    np.testing.assert_array_equal(out, ids)


def test_codec_size_table(benchmark, matrix):
    codecs = [
        IdentityCodec(),
        Float16Codec(),
        QuantizingCodec(bits=8),
        QuantizingCodec(bits=2),
        OneBitCodec(),
        TopKCodec(k=16),
    ]

    def encode_all():
        return {codec.name: codec.encode(matrix) for codec in codecs}

    encoded = benchmark(encode_all)
    rows = []
    for name, enc in encoded.items():
        ratio = matrix.nbytes / enc.payload_bytes
        rows.append([name, enc.payload_bytes, f"{ratio:.1f}x"])
    print()
    print(format_table(
        ["codec", "bytes", "ratio"],
        rows,
        title=f"Codec sizes for a {ROWS}x{DIM} float32 embedding matrix",
    ))
    assert encoded["quant2"].payload_bytes < encoded["quant8"].payload_bytes
