"""Unit tests for the simulated shared store (NFS)."""

import numpy as np
import pytest

from repro.cluster.nfs import SharedStore


class TestMemoryStore:
    def test_roundtrip(self):
        store = SharedStore()
        store.put("arr", np.arange(5))
        np.testing.assert_array_equal(store.get("arr"), np.arange(5))

    def test_missing_key(self):
        with pytest.raises(KeyError):
            SharedStore().get("nope")

    def test_size_tracking(self):
        store = SharedStore()
        small = store.put("small", np.zeros(2))
        large = store.put("large", np.zeros(2000))
        assert large > small
        assert store.size_of("large") == large

    def test_read_byte_accounting(self):
        store = SharedStore()
        size = store.put("x", list(range(100)))
        store.get("x")
        store.get("x")
        assert store.total_read_bytes() == 2 * size

    def test_keys(self):
        store = SharedStore()
        store.put("a", 1)
        store.put("b", 2)
        assert sorted(store.keys()) == ["a", "b"]

    def test_overwrite(self):
        store = SharedStore()
        store.put("k", 1)
        store.put("k", [1, 2, 3])
        assert store.get("k") == [1, 2, 3]


class TestSpillStore:
    def test_roundtrip_via_disk(self, tmp_path):
        store = SharedStore(spill_dir=tmp_path / "nfs")
        store.put("part/0", {"vertices": [1, 2]})
        assert store.get("part/0") == {"vertices": [1, 2]}
        assert list((tmp_path / "nfs").iterdir())

    def test_unsafe_key_characters_sanitized(self, tmp_path):
        store = SharedStore(spill_dir=tmp_path)
        store.put("a/b:c d", 42)
        assert store.get("a/b:c d") == 42
