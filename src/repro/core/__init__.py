"""EC-Graph core: the paper's contribution.

Configuration, GCN math, halo-exchange policies (including ReqEC-FP with
the adaptive Bit-Tuner and ResEC-BP), worker state, the NAC and the
distributed trainers.
"""

from repro.core.bit_tuner import BIT_LADDER, BitTuner
from repro.core.checkpoint import (
    CheckpointError,
    load_checkpoint,
    restore_trainer,
    save_checkpoint,
)
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.messages import ChannelKey, ChannelMessage, RawPolicy, ReceiveResult
from repro.core.models import GNNParameters, build_parameters
from repro.core.policies import CodecPolicy, CompressPolicy, DelayedPolicy
from repro.core.reqec_fp import (
    SELECT_AVERAGE,
    SELECT_COMPRESSED,
    SELECT_PREDICTED,
    ReqECPolicy,
    TrendState,
)
from repro.core.resec_bp import ResECPolicy
from repro.core.gat import GATTrainer
from repro.core.sage import SAGETrainer
from repro.core.results import ConvergenceRun, EpochResult
from repro.core.sampling_trainer import SampledECGraphTrainer
from repro.core.trainer import ECGraphTrainer
from repro.core.worker import WorkerState, build_worker_states

__all__ = [
    "BIT_LADDER",
    "BitTuner",
    "ECGraphConfig",
    "ModelConfig",
    "ChannelKey",
    "ChannelMessage",
    "RawPolicy",
    "ReceiveResult",
    "GNNParameters",
    "build_parameters",
    "CodecPolicy",
    "CompressPolicy",
    "DelayedPolicy",
    "SELECT_AVERAGE",
    "SELECT_COMPRESSED",
    "SELECT_PREDICTED",
    "ReqECPolicy",
    "TrendState",
    "ResECPolicy",
    "CheckpointError",
    "ConvergenceRun",
    "EpochResult",
    "ECGraphTrainer",
    "GATTrainer",
    "SAGETrainer",
    "SampledECGraphTrainer",
    "load_checkpoint",
    "restore_trainer",
    "save_checkpoint",
    "WorkerState",
    "build_worker_states",
]
