"""Out-of-core building blocks: external sort and chunked CSR fill.

The streaming generators encode edges as int64 keys (``src * n + dst``,
or ``lo * n + hi`` for undirected edges) and push them through an
:class:`ExternalSorter`: appended blocks are sorted and spilled as npy
runs, then merged pairwise blockwise — at no point does the full edge
list live in memory. The deduplicated ascending key stream drives the
CSR fill passes (:func:`fill_csr_directed`, :func:`fill_csr_symmetric`)
which scatter column ids into edge-aligned chunk buffers
(:class:`ChunkedEdgeArray`) — plain ``np.empty`` slices for the memory
backend, writable npy memmaps for the mmap backend.

``fill_csr_symmetric`` reconstructs exactly the row layout
``from_edge_list(both_arcs, deduplicate=True)`` produces from a
key-sorted unique undirected edge list: row ``v`` holds the forward
targets (``hi`` ascending) followed by the reverse sources (``lo``
ascending). That determinism is what lets the streaming SBM generator
stay bit-identical to :func:`repro.graph.generators.generate_graph`.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import BinaryIO, Callable, Iterator

import numpy as np

from repro.graph.store.mmapstore import release_pages

__all__ = [
    "ExternalSorter",
    "ChunkedEdgeArray",
    "fill_csr_directed",
    "fill_csr_symmetric",
]

DEFAULT_RUN_SIZE = 4_000_000  # int64 keys per sorted run (~32 MB)
DEFAULT_MERGE_BLOCK = 1_000_000


def _npy_header(fh: BinaryIO) -> tuple[tuple[int, ...], np.dtype]:
    version = np.lib.format.read_magic(fh)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
    else:
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
    if fortran:
        raise ValueError("fortran-order npy runs are not supported")
    return shape, dtype


def _npy_length(path: Path) -> int:
    with open(path, "rb") as fh:
        shape, _ = _npy_header(fh)
    return int(shape[0])


class ExternalSorter:
    """Sort a stream of int64 keys with bounded memory.

    Appended blocks accumulate until ``run_size``, are sorted and
    spilled to ``workdir`` as one npy run each, and are finally merged
    blockwise. With ``workdir=None`` runs stay in memory (small inputs,
    unit tests) — the merge path is identical.
    """

    def __init__(
        self,
        workdir: str | Path | None = None,
        run_size: int = DEFAULT_RUN_SIZE,
        merge_block: int = DEFAULT_MERGE_BLOCK,
    ) -> None:
        if run_size < 2 or merge_block < 2:
            raise ValueError("run_size and merge_block must be >= 2")
        self._workdir = Path(workdir) if workdir is not None else None
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if self._workdir is not None:
            self._workdir.mkdir(parents=True, exist_ok=True)
        self._run_size = int(run_size)
        self._merge_block = int(merge_block)
        self._pending: list[np.ndarray] = []
        self._pending_size = 0
        self._runs: list[Path | np.ndarray] = []
        self._sealed = False
        self.total_appended = 0

    def append(self, keys: np.ndarray) -> None:
        if self._sealed:
            raise RuntimeError("sorter already merged")
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        if keys.size == 0:
            return
        self.total_appended += keys.size
        self._pending.append(keys)
        self._pending_size += keys.size
        if self._pending_size >= self._run_size:
            self._spill()

    def _spill(self) -> None:
        if not self._pending:
            return
        run = np.sort(np.concatenate(self._pending), kind="stable")
        self._pending = []
        self._pending_size = 0
        if self._workdir is None:
            self._runs.append(run)
            return
        path = self._workdir / f"run-{len(self._runs):05d}.npy"
        np.save(path, run)
        self._runs.append(path)

    @staticmethod
    def _run_blocks(
        run: "Path | np.ndarray", block: int
    ) -> Iterator[np.ndarray]:
        # On-disk runs are streamed with plain reads rather than mmap:
        # mapped pages (even clean ones) count against the process RSS
        # until reclaim, and the merge only ever reads forward once.
        if isinstance(run, Path):
            with open(run, "rb") as fh:
                shape, dtype = _npy_header(fh)
                remaining = int(shape[0])
                while remaining > 0:
                    count = min(block, remaining)
                    data = np.fromfile(fh, dtype=dtype, count=count)
                    if data.shape[0] != count:
                        raise ValueError(f"truncated sorter run: {run}")
                    remaining -= count
                    yield data
            return
        for start in range(0, run.shape[0], block):
            yield run[start:start + block]

    def _merge_two(
        self,
        a: "Path | np.ndarray",
        b: "Path | np.ndarray",
        emit: Callable[[np.ndarray], None],
    ) -> None:
        """Blockwise merge of two sorted runs (keeps duplicates)."""
        block = self._merge_block
        it_a = self._run_blocks(a, block)
        it_b = self._run_blocks(b, block)
        buf_a = next(it_a, None)
        buf_b = next(it_b, None)
        while buf_a is not None and buf_b is not None:
            # Everything <= the smaller of the two block maxima can be
            # emitted now: no later block of either run may undercut it.
            bound = min(buf_a[-1], buf_b[-1])
            ia = int(np.searchsorted(buf_a, bound, side="right"))
            ib = int(np.searchsorted(buf_b, bound, side="right"))
            merged = np.concatenate([buf_a[:ia], buf_b[:ib]])
            merged.sort(kind="stable")
            if merged.size:
                emit(merged)
            buf_a = buf_a[ia:] if ia < buf_a.shape[0] else next(it_a, None)
            buf_b = buf_b[ib:] if ib < buf_b.shape[0] else next(it_b, None)
        for rest, it in ((buf_a, it_a), (buf_b, it_b)):
            if rest is not None and rest.size:
                emit(rest)
            for tail in it:
                if tail.size:
                    emit(tail)

    def _merged_run(
        self, a: "Path | np.ndarray", b: "Path | np.ndarray", index: int
    ) -> "Path | np.ndarray":
        if self._workdir is None:
            parts: list[np.ndarray] = []
            self._merge_two(a, b, parts.append)
            return (
                np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            )
        path = self._workdir / f"merge-{index:05d}.npy"
        total = sum(
            _npy_length(run) if isinstance(run, Path) else run.shape[0]
            for run in (a, b)
        )
        # Stream-write the merged run with plain file I/O: a writable
        # memmap would hold every dirty page resident until writeback,
        # so the final merge alone would spike RSS by the whole edge
        # list (~8 bytes/arc) — the one thing an external sort exists
        # to avoid.
        with open(path, "wb") as fh:
            np.lib.format.write_array_header_1_0(fh, {
                "descr": np.lib.format.dtype_to_descr(np.dtype(np.int64)),
                "fortran_order": False,
                "shape": (int(total),),
            })

            def emit(block: np.ndarray) -> None:
                np.ascontiguousarray(block, dtype=np.int64).tofile(fh)

            self._merge_two(a, b, emit)
        for old in (a, b):
            if isinstance(old, Path):
                old.unlink(missing_ok=True)
        return path

    def sorted_blocks(self, unique: bool = True) -> Iterator[np.ndarray]:
        """Stream the fully sorted keys in ascending blocks.

        ``unique=True`` (the default) also drops duplicates across block
        boundaries. Single use: the sorter seals itself.
        """
        if self._sealed:
            raise RuntimeError("sorter already merged")
        self._spill()
        self._sealed = True
        runs = self._runs
        self._runs = []
        if not runs:
            return
        index = 0
        while len(runs) > 1:
            merged: list[Path | np.ndarray] = []
            for i in range(0, len(runs) - 1, 2):
                merged.append(self._merged_run(runs[i], runs[i + 1], index))
                index += 1
            if len(runs) % 2:
                merged.append(runs[-1])
            runs = merged
        previous_last: int | None = None
        for block in self._run_blocks(runs[0], self._merge_block):
            if unique:
                if block.size > 1:
                    keep = np.empty(block.size, dtype=bool)
                    keep[0] = True
                    np.not_equal(block[1:], block[:-1], out=keep[1:])
                    block = block[keep]
                if (
                    previous_last is not None
                    and block.size
                    and block[0] == previous_last
                ):
                    block = block[1:]
                if block.size:
                    previous_last = int(block[-1])
            if block.size:
                yield block
        if isinstance(runs[0], Path):
            runs[0].unlink(missing_ok=True)


class ChunkedEdgeArray:
    """An edge-aligned array split over per-chunk buffers.

    ``offsets[c]`` is the first global edge position of chunk ``c``
    (length ``num_chunks + 1``); buffers may be plain ndarrays (memory
    backend) or writable npy memmaps (mmap backend). ``scatter`` routes
    position/value batches to the owning buffers.
    """

    def __init__(
        self, offsets: np.ndarray, buffers: list[np.ndarray]
    ) -> None:
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if self.offsets.shape[0] != len(buffers) + 1:
            raise ValueError("offsets must have one entry per buffer + 1")
        self.buffers = buffers

    @classmethod
    def in_memory(
        cls, num_edges: int, dtype: np.dtype | type
    ) -> "ChunkedEdgeArray":
        offsets = np.array([0, num_edges], dtype=np.int64)
        return cls(offsets, [np.empty(num_edges, dtype=dtype)])

    def scatter(self, positions: np.ndarray, values: np.ndarray) -> None:
        if len(self.buffers) == 1:
            self.buffers[0][positions - self.offsets[0]] = values
            return
        chunks = np.searchsorted(self.offsets, positions, side="right") - 1
        order = np.argsort(chunks, kind="stable")
        sorted_chunks = chunks[order]
        bounds = np.flatnonzero(np.diff(sorted_chunks)) + 1
        for group in np.split(order, bounds):
            chunk = int(chunks[group[0]])
            self.buffers[chunk][
                positions[group] - self.offsets[chunk]
            ] = values[group]

    def write_sequential(self, start: int, values: np.ndarray) -> None:
        """Write a contiguous span starting at global position ``start``.

        Sequential fills retire each chunk buffer the moment its last
        position is written (flush + page release), so the resident
        dirty footprint of a whole-graph CSR fill is one chunk, not the
        full edge list.
        """
        if len(self.buffers) == 1:
            base = int(self.offsets[0])
            self.buffers[0][start - base:start - base + values.size] = values
            return
        cursor = 0
        while cursor < values.size:
            pos = start + cursor
            chunk = int(np.searchsorted(self.offsets, pos, side="right")) - 1
            take = min(int(self.offsets[chunk + 1]) - pos, values.size - cursor)
            local = pos - int(self.offsets[chunk])
            self.buffers[chunk][local:local + take] = values[
                cursor:cursor + take
            ]
            cursor += take
            if pos + take == int(self.offsets[chunk + 1]):
                self._retire(chunk)

    def _retire(self, chunk: int) -> None:
        buf = self.buffers[chunk]
        if isinstance(buf, np.memmap):
            buf.flush()
            release_pages(buf)

    def flush(self) -> None:
        for buf in self.buffers:
            if isinstance(buf, np.memmap):
                buf.flush()
                release_pages(buf)


def fill_csr_directed(
    key_blocks: Iterator[np.ndarray],
    num_vertices: int,
    sink: ChunkedEdgeArray,
) -> None:
    """Sequentially fill CSR columns from sorted unique directed keys.

    Keys are ``src * n + dst`` in ascending order, which *is* row-major
    CSR order with sorted rows — the fill is one sequential pass.
    """
    cursor = 0
    for block in key_blocks:
        sink.write_sequential(cursor, block % num_vertices)
        cursor += block.size
    sink.flush()


def fill_csr_symmetric(
    key_blocks_factory: Callable[[], Iterator[np.ndarray]],
    num_vertices: int,
    indptr: np.ndarray,
    forward_counts: np.ndarray,
    sink: ChunkedEdgeArray,
) -> None:
    """Fill symmetric CSR columns from sorted unique undirected keys.

    Keys are ``lo * n + hi`` (``lo < hi``) ascending; the output row for
    vertex ``v`` is the forward targets (``hi`` ascending for edges with
    ``lo == v``) followed by the reverse sources (``lo`` ascending for
    edges with ``hi == v``) — the exact layout
    ``from_edge_list(both_arcs, deduplicate=True)`` yields.
    ``key_blocks_factory`` must produce the same stream twice (forward
    and reverse pass).
    """
    n = num_vertices
    carried = np.zeros(n, dtype=np.int64)
    for block in key_blocks_factory():
        lo = block // n
        hi = block % n
        # Rank of each edge among the block's edges sharing its row: the
        # block is sorted by (lo, hi), so the first occurrence index of
        # each lo value is its searchsorted position.
        rank = np.arange(lo.size, dtype=np.int64) - np.searchsorted(
            lo, lo, side="left"
        )
        sink.scatter(indptr[lo] + carried[lo] + rank, hi)
        np.add.at(carried, lo, 1)
    carried = np.zeros(n, dtype=np.int64)
    for block in key_blocks_factory():
        lo = block // n
        hi = block % n
        order = np.argsort(hi, kind="stable")
        hi_sorted = hi[order]
        lo_sorted = lo[order]
        rank = np.arange(hi_sorted.size, dtype=np.int64) - np.searchsorted(
            hi_sorted, hi_sorted, side="left"
        )
        sink.scatter(
            indptr[hi_sorted]
            + forward_counts[hi_sorted]
            + carried[hi_sorted]
            + rank,
            lo_sorted,
        )
        np.add.at(carried, hi_sorted, 1)
    sink.flush()
