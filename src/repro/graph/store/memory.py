"""In-RAM store backends wrapping today's arrays (the default).

These are thin adapters: ``slice``/``adjacency_block`` return views of
the wrapped arrays, so every byte read through the store seam is the
same byte the pre-store code read — the memory backend is bit-identical
by construction, which is what keeps the golden configs pinned.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.attributed import AttributedGraph
from repro.graph.csr import CSRGraph
from repro.graph.store.base import (
    DEFAULT_MAX_BLOCK_EDGES,
    FeatureStore,
    GraphStore,
    GraphStoreBundle,
)

__all__ = ["MemoryFeatureStore", "MemoryGraphStore", "memory_bundle"]

# Default rows per iter_blocks chunk; chosen so a float32 feature block
# with d=128 is ~32 MB — large enough to amortize, small enough to stay
# cache/RSS friendly. Memory stores only use it to bound view sizes.
DEFAULT_BLOCK_ROWS = 65_536


class MemoryFeatureStore(FeatureStore):
    """Wrap one resident ndarray (1-D or 2-D) behind the row API."""

    def __init__(
        self, array: np.ndarray, block_rows: int = DEFAULT_BLOCK_ROWS
    ) -> None:
        self._array = np.ascontiguousarray(array)
        if self._array.ndim not in (1, 2):
            raise ValueError("feature stores hold 1-D or 2-D arrays")
        self._block_rows = int(block_rows)

    @property
    def shape(self) -> tuple[int, ...]:
        return self._array.shape

    @property
    def dtype(self) -> np.dtype:
        return self._array.dtype

    def slice(self, start: int, stop: int) -> np.ndarray:
        return self._array[start:stop]

    def iter_blocks(self) -> Iterator[tuple[int, int, np.ndarray]]:
        n = self.num_rows
        for start in range(0, max(n, 1), self._block_rows):
            stop = min(start + self._block_rows, n)
            if start >= stop:
                break
            yield start, stop, self._array[start:stop]

    def rows(self, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (
            ids.size == ids[-1] - ids[0] + 1
            and (ids.size == 1 or bool(np.all(np.diff(ids) == 1)))
        ):
            return self._array[int(ids[0]):int(ids[-1]) + 1]
        return self._array[ids]

    def to_array(self) -> np.ndarray:
        return self._array


class MemoryGraphStore(GraphStore):
    """Wrap one resident :class:`CSRGraph` behind the topology API."""

    def __init__(
        self, graph: CSRGraph, block_vertices: int = DEFAULT_BLOCK_ROWS
    ) -> None:
        self._graph = graph
        self._block_vertices = int(block_vertices)

    @property
    def indptr(self) -> np.ndarray:
        return self._graph.indptr

    @property
    def has_weights(self) -> bool:
        return self._graph.weights is not None

    def adjacency_block(
        self, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray | None]:
        lo = int(self._graph.indptr[start])
        hi = int(self._graph.indptr[stop])
        indices = self._graph.indices[lo:hi]
        weights = (
            self._graph.weights[lo:hi] if self._graph.weights is not None else None
        )
        return indices, weights

    def iter_adjacency(
        self,
    ) -> Iterator[tuple[int, int, np.ndarray, np.ndarray | None]]:
        n = self.num_vertices
        for start in range(0, max(n, 1), self._block_vertices):
            stop = min(start + self._block_vertices, n)
            if start >= stop:
                break
            for lo, hi in self._edge_bounded_spans(
                start, stop, DEFAULT_MAX_BLOCK_EDGES
            ):
                indices, weights = self.adjacency_block(lo, hi)
                yield lo, hi, indices, weights

    def to_csr(self) -> CSRGraph:
        return self._graph


def memory_bundle(graph: AttributedGraph) -> GraphStoreBundle:
    """Wrap an :class:`AttributedGraph` as a zero-copy memory bundle."""
    return GraphStoreBundle(
        adjacency=MemoryGraphStore(graph.adjacency),
        feature_store=MemoryFeatureStore(graph.features),
        label_store=MemoryFeatureStore(graph.labels),
        train_mask_store=MemoryFeatureStore(graph.train_mask),
        val_mask_store=MemoryFeatureStore(graph.val_mask),
        test_mask_store=MemoryFeatureStore(graph.test_mask),
        num_classes=graph.num_classes,
        name=graph.name,
        meta=dict(graph.meta),
    )
