"""Tests for heterogeneous-cluster modelling (per-worker compute speeds).

The paper's related-work section notes All-Reduce "is inapplicable to
the heterogeneous cluster"; EC-Graph's parameter-server architecture
runs there, paying for stragglers in epoch time. These tests check the
engine's straggler accounting.
"""

import numpy as np
import pytest

from repro.cluster.engine import ClusterRuntime
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.trainer import ECGraphTrainer


class TestSpecValidation:
    def test_speed_count_must_match(self):
        with pytest.raises(ValueError, match="worker speeds"):
            ClusterSpec(num_workers=3, worker_speeds=(1.0, 1.0))

    def test_speeds_must_be_positive(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_workers=2, worker_speeds=(1.0, 0.0))

    def test_speed_of_combines_global_and_local(self):
        spec = ClusterSpec(num_workers=2, compute_speed=2.0,
                           worker_speeds=(1.0, 0.5))
        assert spec.speed_of(0) == 2.0
        assert spec.speed_of(1) == 1.0


class TestStragglerAccounting:
    def test_slow_worker_gates_the_epoch(self):
        spec = ClusterSpec(num_workers=3, worker_speeds=(1.0, 1.0, 0.25))
        runtime = ClusterRuntime(spec)
        for worker in range(3):
            runtime.add_compute(worker, 1.0)
        breakdown = runtime.end_epoch()
        # Worker 2 runs at quarter speed: 1.0 / 0.25 = 4 s.
        assert breakdown.compute_seconds == pytest.approx(4.0)

    def test_homogeneous_matches_plain_path(self):
        uniform = ClusterSpec(num_workers=2, worker_speeds=(1.0, 1.0))
        plain = ClusterSpec(num_workers=2)
        for spec in (uniform, plain):
            runtime = ClusterRuntime(spec)
            runtime.add_compute(0, 2.0)
            runtime.add_compute(1, 1.0)
            assert runtime.end_epoch().compute_seconds == pytest.approx(2.0)

    def test_training_epoch_time_grows_with_straggler(self, small_graph):
        def compute_time(speeds):
            trainer = ECGraphTrainer(
                small_graph, ModelConfig(num_layers=2, hidden_dim=8),
                ClusterSpec(num_workers=3, worker_speeds=speeds),
                ECGraphConfig(fp_mode="raw", bp_mode="raw"),
            )
            run = trainer.train(3)
            # Compare the compute component: tiny unit graphs are
            # latency-dominated, which would mask the straggler in the
            # epoch total.
            return sum(e.breakdown.compute_seconds for e in run.epochs)

        balanced = compute_time((1.0, 1.0, 1.0))
        straggler = compute_time((1.0, 1.0, 0.1))
        assert straggler > 2 * balanced

    def test_accuracy_unaffected_by_speeds(self, small_graph):
        """Heterogeneity is a timing property only — results identical."""
        losses = []
        for speeds in (None, (1.0, 0.2, 3.0)):
            trainer = ECGraphTrainer(
                small_graph, ModelConfig(num_layers=2, hidden_dim=8),
                ClusterSpec(num_workers=3, worker_speeds=speeds),
                ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=2),
            )
            run = trainer.train(5)
            losses.append([e.loss for e in run.epochs])
        np.testing.assert_allclose(losses[0], losses[1], rtol=1e-6)
