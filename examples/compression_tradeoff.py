"""Explore the compression/accuracy trade-off on a high-degree graph.

High-degree graphs (the paper's Reddit, average degree 492) are the most
sensitive to message quantization: aggregation sums hundreds of
quantized embeddings, so per-message errors compound. This example
sweeps the bit width for plain compression vs the error-compensated
pipeline and prints the accuracy and traffic of each — the workload
behind the paper's Fig. 6.

    python examples/compression_tradeoff.py
"""

from __future__ import annotations

from repro import ECGraphConfig, train_ecgraph
from repro.analysis.reporting import format_table
from repro.graph import load_dataset

EPOCHS = 60
WORKERS = 6


def main() -> None:
    graph = load_dataset("reddit", profile="bench", seed=0)
    print(graph.summary())
    print()

    rows = []
    baseline = train_ecgraph(
        graph, num_workers=WORKERS, num_epochs=EPOCHS,
        config=ECGraphConfig().as_non_cp(), name="Non-cp",
    )
    rows.append(["Non-cp (32-bit)", baseline.best_test_accuracy(),
                 f"{baseline.total_bytes() / 1e6:.1f}MB"])

    for bits in (1, 2, 4, 8):
        compressed = train_ecgraph(
            graph, num_workers=WORKERS, num_epochs=EPOCHS,
            config=ECGraphConfig(
                fp_mode="compress", bp_mode="compress",
                fp_bits=bits, bp_bits=bits, adaptive_bits=False,
            ),
            name=f"Cp-{bits}",
        )
        compensated = train_ecgraph(
            graph, num_workers=WORKERS, num_epochs=EPOCHS,
            config=ECGraphConfig(
                fp_mode="reqec", bp_mode="resec",
                fp_bits=bits, bp_bits=bits, adaptive_bits=False,
            ),
            name=f"EC-{bits}",
        )
        rows.append([f"Compress-only B={bits}",
                     compressed.best_test_accuracy(),
                     f"{compressed.total_bytes() / 1e6:.1f}MB"])
        rows.append([f"Error-compensated B={bits}",
                     compensated.best_test_accuracy(),
                     f"{compensated.total_bytes() / 1e6:.1f}MB"])

    print(format_table(
        ["configuration", "best test accuracy", "total traffic"],
        rows,
        title=f"Bit-width sweep on {graph.name} ({EPOCHS} epochs)",
    ))
    print(
        "\nReading the table: compression-only collapses at low bit widths"
        "\nwhile the compensated pipeline holds near-baseline accuracy —"
        "\nthe paper's Fig. 6 in miniature."
    )


if __name__ == "__main__":
    main()
