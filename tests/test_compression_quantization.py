"""Unit + property tests for bucket quantization (the paper's C_bits)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.compression.quantization import (
    SUPPORTED_BITS,
    BucketQuantizer,
    pack_bits,
    unpack_bits,
)


class TestPackBits:
    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 7, 8, 11, 16])
    def test_roundtrip(self, bits):
        rng = np.random.default_rng(bits)
        values = rng.integers(0, 1 << bits, size=100, dtype=np.uint32)
        packed = pack_bits(values, bits)
        recovered = unpack_bits(packed, bits, 100)
        np.testing.assert_array_equal(recovered, values)

    def test_packed_size(self):
        values = np.arange(16, dtype=np.uint32) % 4
        packed = pack_bits(values, 2)
        assert packed.size == 4  # 16 values * 2 bits = 32 bits = 4 bytes

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            pack_bits(np.array([4], dtype=np.uint32), 2)

    def test_bad_bits_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([0], dtype=np.uint32), 0)
        with pytest.raises(ValueError):
            unpack_bits(np.zeros(1, dtype=np.uint8), 17, 1)

    def test_empty(self):
        packed = pack_bits(np.array([], dtype=np.uint32), 4)
        assert unpack_bits(packed, 4, 0).size == 0

    @given(
        values=st.lists(st.integers(0, 255), min_size=0, max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property_8bit(self, values):
        arr = np.array(values, dtype=np.uint32)
        np.testing.assert_array_equal(
            unpack_bits(pack_bits(arr, 8), 8, arr.size), arr
        )


class TestBucketQuantizer:
    @pytest.mark.parametrize("bits", SUPPORTED_BITS)
    def test_error_bounded_by_half_bucket(self, bits):
        rng = np.random.default_rng(0)
        x = rng.uniform(-3, 5, size=(40, 16)).astype(np.float32)
        q = BucketQuantizer(bits)
        decoded = q.quantize(x)
        bound = q.max_error(float(x.min()), float(x.max())) + 1e-5
        assert np.abs(decoded - x).max() <= bound

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((50, 8)).astype(np.float32)
        errors = [
            np.abs(BucketQuantizer(b).quantize(x) - x).mean()
            for b in (1, 2, 4, 8)
        ]
        assert all(a > b for a, b in zip(errors, errors[1:]))

    def test_constant_matrix_exact(self):
        x = np.full((3, 3), 0.7, dtype=np.float32)
        decoded = BucketQuantizer(2).quantize(x)
        np.testing.assert_allclose(decoded, 0.7, atol=1e-6)

    def test_explicit_domain(self):
        x = np.array([[0.5]], dtype=np.float32)
        q = BucketQuantizer(1)
        encoded = q.encode(x, lo=0.0, hi=1.0)
        assert encoded.lo == 0.0 and encoded.hi == 1.0
        # 0.5 lands in bucket 1 of [0, 0.5)[0.5, 1); midpoint 0.75.
        assert encoded.decode()[0, 0] == pytest.approx(0.75)

    def test_same_domain_same_ids_for_subsets(self):
        """Re-encoding a row subset with the full-matrix domain must give
        the same decoded values (the ReqEC selector depends on this)."""
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, size=(10, 4)).astype(np.float32)
        q = BucketQuantizer(4)
        full = q.encode(x)
        subset = q.encode(x[3:6], lo=full.lo, hi=full.hi)
        np.testing.assert_array_equal(full.decode()[3:6], subset.decode())

    def test_empty_matrix(self):
        q = BucketQuantizer(4)
        encoded = q.encode(np.zeros((0, 8), dtype=np.float32))
        assert encoded.decode().shape == (0, 8)

    def test_unsupported_bits_rejected(self):
        with pytest.raises(ValueError):
            BucketQuantizer(3)

    def test_invalid_domain_rejected(self):
        with pytest.raises(ValueError):
            BucketQuantizer(2).encode(np.ones((2, 2)), lo=1.0, hi=0.0)

    def test_payload_smaller_than_raw(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((200, 64)).astype(np.float32)
        for bits in (1, 2, 4, 8):
            encoded = BucketQuantizer(bits).encode(x)
            assert encoded.payload_bytes() < x.nbytes

    def test_bounds_mode_smaller_than_table_mode(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((50, 32)).astype(np.float32)
        table = BucketQuantizer(8, "table").encode(x)
        bounds = BucketQuantizer(8, "bounds").encode(x)
        assert bounds.payload_bytes() < table.payload_bytes()

    @given(
        x=arrays(
            np.float32,
            st.tuples(st.integers(1, 20), st.integers(1, 8)),
            elements=st.floats(-100, 100, width=32),
        ),
        bits=st.sampled_from(SUPPORTED_BITS),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_error_bound(self, x, bits):
        q = BucketQuantizer(bits)
        decoded = q.quantize(x)
        span = float(x.max() - x.min())
        bound = span / (2 * (1 << bits)) + 1e-4 * max(1.0, span)
        assert np.abs(decoded - x).max() <= bound

    @given(
        x=arrays(
            np.float32,
            st.tuples(st.integers(1, 12), st.integers(1, 6)),
            elements=st.floats(-10, 10, width=32),
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_decode_within_domain(self, x):
        q = BucketQuantizer(4)
        decoded = q.quantize(x)
        assert decoded.min() >= x.min() - 1e-4
        assert decoded.max() <= x.max() + 1e-4

    def test_quantization_idempotent(self):
        """Quantizing an already-quantized matrix is a fixed point when
        the domain is unchanged (values sit at bucket midpoints)."""
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 1, size=(20, 5)).astype(np.float32)
        q = BucketQuantizer(4)
        once = q.quantize(x, lo=0.0, hi=1.0)
        twice = q.quantize(once, lo=0.0, hi=1.0)
        np.testing.assert_allclose(once, twice, atol=1e-6)


class TestKernelEquivalence:
    """The arithmetic kernels must be byte-identical to the original
    bit-matrix implementation (kept in repro.bench.reference) — the wire
    layout is a compatibility contract, not an implementation detail."""

    @pytest.mark.parametrize("bits", list(range(1, 17)))
    def test_pack_byte_identical_to_reference(self, bits):
        from repro.bench.reference import pack_bits_reference

        rng = np.random.default_rng(bits)
        for size in (0, 1, 3, 7, 8, 9, 15, 16, 17, 100, 1001):
            values = rng.integers(0, 1 << bits, size=size, dtype=np.uint32)
            assert pack_bits(values, bits).tobytes() == (
                pack_bits_reference(values, bits).tobytes()
            ), f"bits={bits} size={size}"

    @pytest.mark.parametrize("bits", list(range(1, 17)))
    def test_unpack_inverts_reference_pack(self, bits):
        from repro.bench.reference import pack_bits_reference

        rng = np.random.default_rng(100 + bits)
        for size in (1, 8, 9, 63, 100):
            values = rng.integers(0, 1 << bits, size=size, dtype=np.uint32)
            packed = pack_bits_reference(values, bits)
            np.testing.assert_array_equal(
                unpack_bits(packed, bits, size), values
            )


class TestStrictBufferLength:
    @pytest.mark.parametrize("bits", [1, 3, 4, 8, 11, 16])
    def test_oversized_buffer_rejected(self, bits):
        values = np.arange(10, dtype=np.uint32) % (1 << bits)
        packed = pack_bits(values, bits)
        padded = np.concatenate([packed, np.zeros(3, dtype=np.uint8)])
        with pytest.raises(ValueError, match="exactly"):
            unpack_bits(padded, bits, 10)

    @pytest.mark.parametrize("bits", [1, 3, 4, 8, 11, 16])
    def test_short_buffer_rejected(self, bits):
        values = np.arange(10, dtype=np.uint32) % (1 << bits)
        packed = pack_bits(values, bits)
        with pytest.raises(ValueError, match="exactly"):
            unpack_bits(packed[:-1], bits, 10)


class TestEmptyMatrixBounds:
    def test_explicit_bounds_honored_for_empty_input(self):
        """Regression: an empty matrix used to discard the caller's
        (lo, hi) and encode a [0, 0] domain — the all-predicted ReqEC
        selector payload then shipped wrong bounds."""
        q = BucketQuantizer(4)
        encoded = q.encode(np.zeros((0, 8), dtype=np.float32), lo=-1.5, hi=3.0)
        assert encoded.lo == -1.5
        assert encoded.hi == 3.0
        np.testing.assert_array_equal(
            encoded.bucket_values, q.representatives(-1.5, 3.0)
        )

    def test_empty_input_default_bounds(self):
        q = BucketQuantizer(4)
        encoded = q.encode(np.zeros((0, 8), dtype=np.float32))
        assert encoded.lo == 0.0 and encoded.hi == 0.0

    def test_empty_input_invalid_bounds_rejected(self):
        q = BucketQuantizer(4)
        with pytest.raises(ValueError, match="invalid domain"):
            q.encode(np.zeros((0, 4), dtype=np.float32), lo=2.0, hi=-2.0)


class TestEncodeIds:
    def test_encode_ids_matches_encode(self):
        rng = np.random.default_rng(9)
        x = rng.uniform(-2, 2, size=(23, 7)).astype(np.float32)
        q = BucketQuantizer(4)
        ids, reps, lo, hi = q.encode_ids(x)
        via_encode = q.encode(x)
        assert (lo, hi) == (via_encode.lo, via_encode.hi)
        np.testing.assert_array_equal(reps, via_encode.bucket_values)
        assert pack_bits(ids, 4).tobytes() == via_encode.packed.tobytes()

    def test_sliced_ids_equal_subset_reencode(self):
        """Slicing full-matrix ids is wire-identical to re-encoding the
        value subset with the full matrix's explicit domain — the
        invariant the single-quantize ReqEC respond path relies on."""
        rng = np.random.default_rng(10)
        x = rng.uniform(-1, 4, size=(30, 5)).astype(np.float32)
        q = BucketQuantizer(8)
        ids, reps, lo, hi = q.encode_ids(x)
        mask = rng.random(30) < 0.5
        sub = x[mask]
        sliced = q.from_ids(
            ids.reshape(x.shape)[mask].ravel(), sub.shape, reps, lo, hi
        )
        direct = q.encode(sub, lo=lo, hi=hi)
        assert sliced.packed.tobytes() == direct.packed.tobytes()
        np.testing.assert_array_equal(
            sliced.bucket_values, direct.bucket_values
        )
