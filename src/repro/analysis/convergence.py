"""Convergence-comparison helpers shared by the benchmarks.

The paper compares systems both on *time per epoch* (Table IV) and on
*time to converge* (Figs. 8-9: epoch time × epochs until the near-optimal
accuracy is reached). These helpers turn a set of
:class:`~repro.core.results.ConvergenceRun` objects into those derived
quantities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import ConvergenceRun

__all__ = ["ConvergenceSummary", "summarize", "convergence_target",
           "compare_speedups"]


@dataclass(frozen=True)
class ConvergenceSummary:
    """Derived metrics of one run against a shared accuracy target."""

    name: str
    avg_epoch_seconds: float
    best_test_accuracy: float
    final_test_accuracy: float
    epochs_to_target: int | None
    seconds_to_target: float | None
    total_bytes: int
    preprocessing_seconds: float


def convergence_target(
    runs: list[ConvergenceRun], slack: float = 0.98
) -> float:
    """A shared accuracy target: ``slack`` times the best run's peak.

    The paper's "near-optimal test accuracy" criterion: a run converged
    once it reaches 98 % of the best accuracy any system achieved.
    """
    best = max((run.best_test_accuracy() for run in runs), default=0.0)
    return best * slack


def summarize(
    run: ConvergenceRun, target: float
) -> ConvergenceSummary:
    """Compute one run's summary against an accuracy target."""
    epochs_to_target = None
    for result in run.epochs:
        if result.test_accuracy >= target:
            epochs_to_target = result.epoch + 1
            break
    return ConvergenceSummary(
        name=run.name,
        avg_epoch_seconds=run.avg_epoch_seconds(),
        best_test_accuracy=run.best_test_accuracy(),
        final_test_accuracy=run.final_test_accuracy
        if run.final_test_accuracy is not None
        else (run.epochs[-1].test_accuracy if run.epochs else 0.0),
        epochs_to_target=epochs_to_target,
        seconds_to_target=run.time_to_accuracy(target),
        total_bytes=run.total_bytes(),
        preprocessing_seconds=run.preprocessing_seconds,
    )


def compare_speedups(
    reference: ConvergenceSummary, others: list[ConvergenceSummary]
) -> dict[str, float | None]:
    """Convergence-time speedup of ``reference`` over each other system.

    ``None`` marks systems that never reached the target (the paper
    reports these as non-converged rather than assigning a number).
    """
    speedups: dict[str, float | None] = {}
    if reference.seconds_to_target is None:
        return {other.name: None for other in others}
    for other in others:
        if other.seconds_to_target is None:
            speedups[other.name] = None
        else:
            speedups[other.name] = (
                other.seconds_to_target / reference.seconds_to_target
            )
    return speedups
