"""Dataset registry matched to the paper's Table III.

The paper evaluates on five public graphs. This offline reproduction
generates synthetic stand-ins with matched structure (see
:mod:`repro.graph.generators`), recording the scale factor applied to the
large graphs. ``PAPER_STATS`` preserves the original statistics so reports
can show paper-vs-simulated side by side.

Three size profiles are provided:

* ``full`` — the largest sizes this single-process simulator trains
  comfortably (the big graphs are scaled down by the recorded factor);
* ``bench`` — smaller instances for the benchmark harness;
* ``tiny`` — a-few-hundred-vertex instances for unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.attributed import AttributedGraph
from repro.graph.generators import GraphSpec, generate_graph

__all__ = ["PAPER_STATS", "DatasetStats", "dataset_names", "dataset_spec",
           "load_dataset", "scale_factor"]


@dataclass(frozen=True)
class DatasetStats:
    """Published statistics of one evaluation dataset (paper Table III)."""

    num_vertices: int
    num_edges: int
    feature_dim: int
    num_classes: int
    avg_degree: float


PAPER_STATS: dict[str, DatasetStats] = {
    "cora": DatasetStats(2_708, 10_556, 1_433, 7, 3.90),
    "pubmed": DatasetStats(19_717, 88_654, 500, 3, 4.50),
    "reddit": DatasetStats(232_965, 114_615_892, 602, 41, 491.99),
    "ogbn-products": DatasetStats(2_449_029, 123_718_024, 100, 47, 50.52),
    "ogbn-papers": DatasetStats(111_059_956, 3_231_371_744, 128, 172, 29.10),
}

# Simulated sizes per profile: (num_vertices, avg_degree, feature_dim,
# num_classes). Degree is preserved where feasible because it is the
# paper's key sensitivity axis; Reddit keeps a much higher degree than the
# rest even after scaling.
_PROFILES: dict[str, dict[str, tuple[int, float, int, int]]] = {
    "full": {
        "cora": (2_708, 3.90, 256, 7),
        "pubmed": (19_717, 4.50, 128, 3),
        "reddit": (8_192, 96.0, 128, 41),
        "ogbn-products": (16_384, 32.0, 100, 47),
        "ogbn-papers": (32_768, 16.0, 128, 64),
    },
    "bench": {
        "cora": (1_024, 3.90, 64, 7),
        "pubmed": (2_048, 4.50, 64, 3),
        "reddit": (2_048, 48.0, 64, 16),
        "ogbn-products": (3_072, 24.0, 64, 16),
        "ogbn-papers": (4_096, 12.0, 64, 24),
    },
    "tiny": {
        "cora": (192, 4.0, 16, 4),
        "pubmed": (224, 4.5, 16, 3),
        "reddit": (256, 24.0, 16, 5),
        "ogbn-products": (288, 12.0, 16, 6),
        "ogbn-papers": (320, 8.0, 16, 6),
    },
}

# Qualitative knobs per dataset, chosen so the simulated accuracy ordering
# mirrors Table V: Reddit converges highest (~92 %), the citation graphs in
# the mid 80s, Papers much lower (the paper reports 44.6 %).
_HOMOPHILY = {
    "cora": 0.82,
    "pubmed": 0.86,
    "reddit": 0.93,
    "ogbn-products": 0.84,
    "ogbn-papers": 0.55,
}
_FEATURE_NOISE = {
    "cora": 1.6,
    "pubmed": 1.4,
    "reddit": 1.2,
    "ogbn-products": 1.8,
    "ogbn-papers": 3.5,
}
_POWER_LAW = {
    "cora": 0.0,
    "pubmed": 0.0,
    "reddit": 2.0,
    "ogbn-products": 1.8,
    "ogbn-papers": 1.8,
}

# Paper Table V: EC-Graph's final test accuracy per dataset. Label noise
# is derived from these so the simulated graphs plateau near the published
# numbers: accuracy ceiling = 1 - p * (1 - 1/classes)  =>  p = (1 - acc)
# / (1 - 1/classes).
_TARGET_ACCURACY = {
    "cora": 0.871,
    "pubmed": 0.866,
    "reddit": 0.927,
    "ogbn-products": 0.862,
    "ogbn-papers": 0.446,
}


def _label_noise_for(name: str, num_classes: int) -> float:
    """Label-noise rate that puts the accuracy ceiling at the paper value."""
    target = _TARGET_ACCURACY[name]
    return min((1.0 - target) / (1.0 - 1.0 / num_classes), 0.99)


def dataset_names() -> list[str]:
    """Names of the five evaluation datasets, in the paper's order."""
    return list(PAPER_STATS)


def scale_factor(name: str, profile: str = "full") -> float:
    """Vertex-count scale factor between the paper's graph and ours."""
    stats = PAPER_STATS[name]
    sim = _PROFILES[profile][name]
    return stats.num_vertices / sim[0]


def dataset_spec(name: str, profile: str = "full", seed: int = 0) -> GraphSpec:
    """Build the :class:`GraphSpec` for a named dataset and profile."""
    if name not in PAPER_STATS:
        known = ", ".join(dataset_names())
        raise KeyError(f"unknown dataset {name!r}; known: {known}")
    if profile not in _PROFILES:
        known = ", ".join(sorted(_PROFILES))
        raise KeyError(f"unknown profile {profile!r}; known: {known}")
    n, degree, feat, classes = _PROFILES[profile][name]
    return GraphSpec(
        name=f"{name}-sim" if scale_factor(name, profile) > 1.001 else name,
        num_vertices=n,
        avg_degree=degree,
        feature_dim=feat,
        num_classes=classes,
        homophily=_HOMOPHILY[name],
        feature_noise=_FEATURE_NOISE[name],
        power_law=_POWER_LAW[name],
        label_noise=_label_noise_for(name, classes),
        seed=seed,
    )


def load_dataset(name: str, profile: str = "full", seed: int = 0) -> AttributedGraph:
    """Generate the simulated stand-in for a named paper dataset.

    The returned graph's ``meta`` records the paper statistics and the
    scale factor so experiment reports can surface the substitution.
    """
    spec = dataset_spec(name, profile, seed)
    graph = generate_graph(spec)
    stats = PAPER_STATS[name]
    graph.meta.update(
        paper_vertices=stats.num_vertices,
        paper_edges=stats.num_edges,
        paper_feature_dim=stats.feature_dim,
        paper_classes=stats.num_classes,
        paper_avg_degree=stats.avg_degree,
        scale_factor=scale_factor(name, profile),
        profile=profile,
    )
    return graph
