"""Unit tests for the codec layer (identity/float16/quant/top-k/1-bit)."""

import numpy as np
import pytest

from repro.compression.codec import Float16Codec, IdentityCodec, QuantizingCodec
from repro.compression.onebit import OneBitCodec
from repro.compression.stats import compression_report
from repro.compression.topk import TopKCodec


@pytest.fixture
def matrix():
    rng = np.random.default_rng(0)
    return rng.standard_normal((30, 16)).astype(np.float32)


class TestIdentity:
    def test_lossless(self, matrix):
        codec = IdentityCodec()
        encoded = codec.encode(matrix)
        np.testing.assert_array_equal(codec.decode(encoded), matrix)

    def test_size_is_raw_plus_header(self, matrix):
        encoded = IdentityCodec().encode(matrix)
        assert encoded.payload_bytes == matrix.nbytes + 24

    def test_wrong_payload_rejected(self, matrix):
        identity = IdentityCodec()
        other = Float16Codec().encode(matrix)
        with pytest.raises(ValueError):
            identity.decode(other)


class TestFloat16:
    def test_half_size(self, matrix):
        encoded = Float16Codec().encode(matrix)
        assert encoded.payload_bytes == matrix.nbytes // 2 + 24

    def test_small_error(self, matrix):
        codec = Float16Codec()
        decoded = codec.decode(codec.encode(matrix))
        assert np.abs(decoded - matrix).max() < 0.01
        assert decoded.dtype == np.float32


class TestQuantizingCodec:
    def test_roundtrip_error_bounded(self, matrix):
        codec = QuantizingCodec(bits=8)
        decoded = codec.decode(codec.encode(matrix))
        span = matrix.max() - matrix.min()
        assert np.abs(decoded - matrix).max() <= span / 512 + 1e-5

    def test_bits_mutable_for_tuner(self, matrix):
        codec = QuantizingCodec(bits=2)
        assert codec.name == "quant2"
        small = codec.encode(matrix).payload_bytes
        codec.bits = 8
        assert codec.name == "quant8"
        assert codec.encode(matrix).payload_bytes > small

    def test_explicit_bounds_forwarded(self, matrix):
        codec = QuantizingCodec(bits=4)
        encoded = codec.encode(matrix, lo=-10.0, hi=10.0)
        assert encoded.payload.lo == -10.0


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        x = np.array([[0.1, -5.0, 0.3, 2.0]], dtype=np.float32)
        codec = TopKCodec(k=2)
        decoded = codec.decode(codec.encode(x))
        np.testing.assert_allclose(decoded, [[0.0, -5.0, 0.0, 2.0]])

    def test_k_at_least_cols_is_lossless(self, matrix):
        codec = TopKCodec(k=64)
        decoded = codec.decode(codec.encode(matrix))
        np.testing.assert_allclose(decoded, matrix, atol=1e-6)

    def test_size_scales_with_k(self, matrix):
        small = TopKCodec(k=2).encode(matrix).payload_bytes
        large = TopKCodec(k=8).encode(matrix).payload_bytes
        assert large > small

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKCodec(k=0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            TopKCodec(k=1).encode(np.zeros(5, dtype=np.float32))


class TestOneBit:
    def test_signs_preserved(self, matrix):
        codec = OneBitCodec()
        decoded = codec.decode(codec.encode(matrix))
        np.testing.assert_array_equal(
            np.sign(decoded), np.where(matrix >= 0, 1.0, -1.0)
        )

    def test_mean_magnitude_reconstruction(self):
        x = np.array([1.0, 3.0, -2.0, -4.0], dtype=np.float32)
        codec = OneBitCodec()
        decoded = codec.decode(codec.encode(x))
        np.testing.assert_allclose(decoded, [2.0, 2.0, -3.0, -3.0])

    def test_extreme_compression_ratio(self, matrix):
        encoded = OneBitCodec().encode(matrix)
        assert encoded.payload_bytes < matrix.nbytes / 20

    def test_all_positive(self):
        x = np.ones(8, dtype=np.float32)
        decoded = OneBitCodec().decode(OneBitCodec().encode(x))
        np.testing.assert_allclose(decoded, 1.0)


class TestCompressionReport:
    def test_ratio_and_errors(self, matrix):
        codec = QuantizingCodec(bits=2)
        encoded = codec.encode(matrix)
        report = compression_report(
            matrix, codec.decode(encoded), encoded.payload_bytes
        )
        assert report.ratio > 5
        assert report.l1_error > 0
        assert 0 < report.relative_l2 < 1

    def test_lossless_report(self, matrix):
        report = compression_report(matrix, matrix.copy(), matrix.nbytes)
        assert report.l2_error == 0.0
        assert report.ratio == pytest.approx(1.0)

    def test_shape_mismatch(self, matrix):
        with pytest.raises(ValueError):
            compression_report(matrix, matrix[:-1], 10)
