"""Subgraph extraction utilities.

Two operations back the two system families in the paper:

* :func:`induced_subgraph` — the *graph-centered* path: each worker holds
  exactly the vertices a partitioner assigned to it, plus the cut edges
  that point at remote vertices (the remote endpoints stay remote).
* :func:`khop_neighborhood` — the *ML-centered* path (AliGraph/AGL): a
  target vertex pulls its entire L-hop neighbourhood so the worker can run
  the GNN without communicating; this is the memory/computation redundancy
  the paper's Table II quantifies.

:func:`induced_subgraph` accepts either a resident :class:`CSRGraph` or a
:class:`~repro.graph.store.GraphStore` and streams adjacency blocks, so
extraction never materializes the global column array — only the chunks
that actually hold local rows become resident (see ``docs/storage.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.store.base import GraphStore, as_topology

__all__ = ["LocalSubgraph", "induced_subgraph", "khop_neighborhood",
           "khop_sampled_neighborhood"]


@dataclass
class LocalSubgraph:
    """A worker-local view of a partitioned graph.

    The subgraph keeps the *global* structure relevant to its local
    vertices: local rows of the adjacency, with columns relabelled into a
    compact space ``[0, num_local + num_remote)`` where local vertices come
    first, then remote (halo) vertices in sorted global order.

    Attributes:
        local_vertices: Global ids of the vertices owned by this worker.
        remote_vertices: Global ids of remote 1-hop neighbours (the halo).
        indptr / indices / weights: CSR rows for the local vertices, with
            column ids in the compact space.
    """

    local_vertices: np.ndarray
    remote_vertices: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray | None
    _mapping: dict[int, int] | None = field(default=None, repr=False)

    @property
    def num_local(self) -> int:
        return self.local_vertices.shape[0]

    @property
    def num_remote(self) -> int:
        return self.remote_vertices.shape[0]

    @property
    def num_edges(self) -> int:
        return self.indices.shape[0]

    @property
    def global_to_compact(self) -> dict[int, int]:
        """Mapping from global vertex id to compact id (built lazily)."""
        if self._mapping is None:
            mapping = {
                int(g): compact
                for compact, g in enumerate(self.local_vertices)
            }
            offset = self.local_vertices.shape[0]
            for compact, g in enumerate(self.remote_vertices):
                mapping[int(g)] = offset + compact
            self._mapping = mapping
        return self._mapping

    def compact_ids(self, global_ids: np.ndarray) -> np.ndarray:
        """Translate global vertex ids into this worker's compact space."""
        mapping = self.global_to_compact
        return np.fromiter(
            (mapping[int(g)] for g in global_ids),
            dtype=np.int64,
            count=len(global_ids),
        )


def _ragged_positions(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat positions covering ``[starts[i], starts[i] + lengths[i])``."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    flat_starts = np.cumsum(lengths) - lengths
    offsets = np.arange(total, dtype=np.int64) - np.repeat(flat_starts, lengths)
    return np.repeat(starts, lengths) + offsets


def induced_subgraph(
    graph: CSRGraph | GraphStore, local_vertices: np.ndarray
) -> LocalSubgraph:
    """Extract the worker-local subgraph for a set of owned vertices.

    All edges leaving the owned vertices are kept; edges pointing at
    non-owned vertices make those targets part of the remote halo. The
    extraction streams adjacency blocks, so handing it an out-of-core
    :class:`GraphStore` touches only the chunks holding local rows.
    """
    local_vertices = np.asarray(local_vertices, dtype=np.int64)
    if local_vertices.size != np.unique(local_vertices).size:
        raise ValueError("local vertex set contains duplicates")
    store = as_topology(graph)
    full_indptr = store.indptr
    if local_vertices.size and (
        local_vertices.min() < 0
        or local_vertices.max() >= store.num_vertices
    ):
        raise IndexError("local vertex id out of range")

    counts = (
        full_indptr[local_vertices + 1] - full_indptr[local_vertices]
    ).astype(np.int64)
    indptr = np.zeros(local_vertices.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    global_cols = np.empty(total, dtype=np.int64)
    weights = (
        np.empty(total, dtype=np.float32) if store.has_weights else None
    )

    # Rows are gathered in ascending global order (one pass over the
    # storage chunks) and scattered into their position in the caller's
    # ordering of ``local_vertices``.
    order = np.argsort(local_vertices, kind="stable")
    sorted_locals = local_vertices[order]
    cursor = 0
    for start, stop, block_idx, block_w in store.iter_adjacency():
        if cursor >= sorted_locals.size:
            break
        if sorted_locals[cursor] >= stop:
            continue
        end = int(np.searchsorted(sorted_locals, stop, side="left"))
        sel = sorted_locals[cursor:end]
        rows_out = order[cursor:end]
        lens = counts[rows_out]
        src = _ragged_positions(
            full_indptr[sel] - full_indptr[start], lens
        )
        dst = _ragged_positions(indptr[rows_out], lens)
        global_cols[dst] = block_idx[src]
        if weights is not None:
            weights[dst] = block_w[src]
        cursor = end

    unique_cols = np.unique(global_cols)
    is_local = np.isin(unique_cols, sorted_locals, assume_unique=True)
    remote_vertices = unique_cols[~is_local]

    # Compact relabel: local columns map to their position in the given
    # ordering, remote columns to num_local + rank in sorted halo order.
    compact_of_unique = np.empty(unique_cols.size, dtype=np.int64)
    compact_of_unique[is_local] = order[
        np.searchsorted(sorted_locals, unique_cols[is_local])
    ]
    compact_of_unique[~is_local] = local_vertices.shape[0] + np.arange(
        remote_vertices.size, dtype=np.int64
    )
    indices = compact_of_unique[np.searchsorted(unique_cols, global_cols)]

    return LocalSubgraph(
        local_vertices=local_vertices,
        remote_vertices=remote_vertices,
        indptr=indptr,
        indices=indices,
        weights=weights,
    )


def khop_neighborhood(
    graph: CSRGraph | GraphStore, targets: np.ndarray, hops: int
) -> np.ndarray:
    """Global ids of all vertices within ``hops`` of ``targets``.

    This is the vertex set an ML-centered worker must cache to train a
    ``hops``-layer GNN on ``targets`` without communication. The result
    includes the targets themselves and is sorted.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    frontier = set(int(v) for v in np.asarray(targets).ravel())
    visited = set(frontier)
    for _ in range(hops):
        next_frontier: set[int] = set()
        for v in frontier:
            for u in graph.neighbors(v):
                u = int(u)
                if u not in visited:
                    visited.add(u)
                    next_frontier.add(u)
        frontier = next_frontier
        if not frontier:
            break
    return np.array(sorted(visited), dtype=np.int64)


def khop_sampled_neighborhood(
    graph: CSRGraph | GraphStore,
    targets: np.ndarray,
    fanouts: list[int],
    rng: np.random.Generator,
) -> list[np.ndarray]:
    """Layer-wise sampled neighbourhoods (DistDGL/AGL style).

    ``fanouts[i]`` bounds how many neighbours each frontier vertex keeps at
    hop ``i``. Returns one array of *new* vertex ids per hop, so the union
    of targets and all returned arrays is the sampled computation graph.
    """
    frontier = np.unique(np.asarray(targets, dtype=np.int64).ravel())
    visited = set(int(v) for v in frontier)
    layers: list[np.ndarray] = []
    for fanout in fanouts:
        if fanout <= 0:
            raise ValueError("fanouts must be positive")
        new_ids: set[int] = set()
        for v in frontier:
            nbrs = graph.neighbors(int(v))
            if nbrs.size > fanout:
                nbrs = rng.choice(nbrs, size=fanout, replace=False)
            for u in nbrs:
                u = int(u)
                if u not in visited:
                    visited.add(u)
                    new_ids.add(u)
        layer = np.array(sorted(new_ids), dtype=np.int64)
        layers.append(layer)
        frontier = layer
        if frontier.size == 0:
            frontier = np.empty(0, dtype=np.int64)
    return layers
