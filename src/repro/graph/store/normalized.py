"""A normalized-adjacency view over a :class:`GraphStore`.

:func:`repro.graph.normalize.gcn_normalize` materializes the self-loop
augmented, degree-weighted CSR — fine in RAM, impossible out-of-core.
:class:`NormalizedGraphStore` computes the same thing lazily: the
``O(n)`` state (row pointers with self-loops, inverse degree factors,
which rows already had a loop) is resident, and each adjacency block is
assembled on demand from the base store's block.

The assembly replicates :meth:`CSRGraph.with_self_loops` +
``gcn_normalize``/``row_normalize`` element for element: missing
self-loops are appended at the *end* of their row with base weight 1,
and the edge weights are ``base * d^{-1/2}[src] * d^{-1/2}[dst]`` (gcn)
or ``base * d^{-1}[src]`` (row), computed in float64 and cast to
float32 — so ``NormalizedGraphStore(store, scheme).to_csr()`` is
bit-identical to ``normalized_adjacency(csr, scheme)``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.store.base import GraphStore

__all__ = ["NormalizedGraphStore"]

_SCHEMES = ("gcn", "row")


class NormalizedGraphStore(GraphStore):
    """Lazily normalized topology (``gcn`` or ``row``) over a base store."""

    def __init__(self, base: GraphStore, scheme: str = "gcn") -> None:
        if scheme not in _SCHEMES:
            known = ", ".join(_SCHEMES)
            raise KeyError(
                f"unknown normalization {scheme!r}; known: {known}"
            )
        self._base = base
        self.scheme = scheme
        n = base.num_vertices
        base_indptr = base.indptr

        # One streaming pass finds which rows already carry a self-loop.
        has_loop = np.zeros(n, dtype=bool)
        for start, stop, indices, _ in base.iter_adjacency():
            counts = np.diff(base_indptr[start:stop + 1])
            src = np.repeat(
                np.arange(start, stop, dtype=np.int64), counts
            )
            loops = src[src == indices]
            if loops.size:
                has_loop[loops] = True
        self._needs_loop = ~has_loop

        new_counts = np.diff(base_indptr) + self._needs_loop
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(new_counts, out=indptr[1:])
        self._indptr = indptr

        # Degrees of A + I (row sums of the augmented graph), exactly as
        # gcn_normalize/row_normalize derive them from the augmented
        # indptr.
        degree = new_counts.astype(np.float64)
        factor = np.zeros(n, dtype=np.float64)
        nonzero = degree > 0
        if scheme == "gcn":
            factor[nonzero] = 1.0 / np.sqrt(degree[nonzero])
        else:
            factor[nonzero] = 1.0 / degree[nonzero]
        self._factor = factor

    # -- GraphStore surface --------------------------------------------
    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def has_weights(self) -> bool:
        return True

    def _assemble(
        self,
        start: int,
        stop: int,
        base_indices: np.ndarray,
        base_weights: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        base_indptr = self._base.indptr
        old_counts = np.diff(base_indptr[start:stop + 1])
        add = self._needs_loop[start:stop]
        new_counts = old_counts + add
        total = int(new_counts.sum())

        rel_indptr = np.zeros(new_counts.size + 1, dtype=np.int64)
        np.cumsum(new_counts, out=rel_indptr[1:])
        indices = np.empty(total, dtype=np.int64)
        base_vals = np.empty(total, dtype=np.float64)

        # Old entries keep their row-relative position; appended loops
        # take the last slot of their row (with_self_loops layout).
        old_total = int(old_counts.sum())
        if old_total:
            flat_starts = np.cumsum(old_counts) - old_counts
            offsets = (
                np.arange(old_total, dtype=np.int64)
                - np.repeat(flat_starts, old_counts)
            )
            old_pos = np.repeat(rel_indptr[:-1], old_counts) + offsets
            indices[old_pos] = base_indices
            base_vals[old_pos] = (
                1.0 if base_weights is None
                else base_weights.astype(np.float64)
            )
        loop_rows = np.flatnonzero(add)
        if loop_rows.size:
            loop_pos = rel_indptr[loop_rows + 1] - 1
            indices[loop_pos] = loop_rows + start
            base_vals[loop_pos] = 1.0

        src = np.repeat(
            np.arange(start, stop, dtype=np.int64), new_counts
        )
        if self.scheme == "gcn":
            weights = base_vals * self._factor[src] * self._factor[indices]
        else:
            weights = base_vals * self._factor[src]
        return indices, weights.astype(np.float32)

    def adjacency_block(
        self, start: int, stop: int
    ) -> tuple[np.ndarray, np.ndarray | None]:
        base_indices, base_weights = self._base.adjacency_block(start, stop)
        return self._assemble(start, stop, base_indices, base_weights)

    def iter_adjacency(
        self,
    ) -> Iterator[tuple[int, int, np.ndarray, np.ndarray | None]]:
        for start, stop, base_indices, base_weights in (
            self._base.iter_adjacency()
        ):
            indices, weights = self._assemble(
                start, stop, base_indices, base_weights
            )
            yield start, stop, indices, weights
