"""Message compression: the paper's B-bit bucket quantization plus the
baseline codecs it is compared against (raw, float16, top-k, 1-bit).
"""

from repro.compression.codec import (
    Codec,
    EncodedMatrix,
    Float16Codec,
    IdentityCodec,
    QuantizingCodec,
)
from repro.compression.onebit import OneBitCodec
from repro.compression.quantization import (
    SUPPORTED_BITS,
    BucketQuantizer,
    QuantizedMatrix,
    pack_bits,
    unpack_bits,
)
from repro.compression.stats import CompressionReport, compression_report
from repro.compression.topk import TopKCodec

__all__ = [
    "Codec",
    "EncodedMatrix",
    "Float16Codec",
    "IdentityCodec",
    "QuantizingCodec",
    "OneBitCodec",
    "SUPPORTED_BITS",
    "BucketQuantizer",
    "QuantizedMatrix",
    "pack_bits",
    "unpack_bits",
    "CompressionReport",
    "compression_report",
    "TopKCodec",
]
