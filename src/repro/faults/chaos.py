"""Chaos runner: train under a fault scenario and report survival.

Runs the same system twice on the same graph — once fault-free, once
under a named scenario from :mod:`repro.faults.scenarios` — and distils
the comparison into a :class:`ChaosReport`: did training survive every
scheduled epoch, what did the tolerance machinery absorb, and how much
accuracy/time did the faults cost.

This module imports :mod:`repro.core`, so it is intentionally *not*
re-exported from ``repro.faults.__init__`` (which ``repro.core.config``
itself imports).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.baselines.systems import run_system
from repro.core.results import ConvergenceRun
from repro.faults.config import FaultConfig
from repro.faults.injector import FaultCounters
from repro.faults.scenarios import build_scenario
from repro.graph.attributed import AttributedGraph

__all__ = ["ChaosReport", "run_chaos"]


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of one chaos scenario versus its fault-free twin."""

    scenario: str
    fault_config: FaultConfig
    scheduled_epochs: int
    completed_epochs: int
    counters: FaultCounters
    baseline_accuracy: float
    chaos_accuracy: float
    baseline_seconds: float
    chaos_seconds: float
    membership_events: tuple[dict, ...] = ()

    @property
    def survived(self) -> bool:
        """All scheduled epochs completed despite the injected faults."""
        return self.completed_epochs == self.scheduled_epochs

    @property
    def accuracy_gap(self) -> float:
        """Fault-free minus faulty final test accuracy (>0 = faults hurt)."""
        return self.baseline_accuracy - self.chaos_accuracy

    @property
    def slowdown(self) -> float:
        """Modelled time ratio faulty / fault-free."""
        if self.baseline_seconds <= 0:
            return 1.0
        return self.chaos_seconds / self.baseline_seconds

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "scheduled_epochs": self.scheduled_epochs,
            "completed_epochs": self.completed_epochs,
            "survived": self.survived,
            "baseline_accuracy": self.baseline_accuracy,
            "chaos_accuracy": self.chaos_accuracy,
            "accuracy_gap": self.accuracy_gap,
            "baseline_seconds": self.baseline_seconds,
            "chaos_seconds": self.chaos_seconds,
            "slowdown": self.slowdown,
            "counters": self.counters.as_dict(),
            "membership_events": [dict(e) for e in self.membership_events],
        }


def _total_seconds(run: ConvergenceRun) -> float:
    return sum(epoch.breakdown.total_seconds for epoch in run.epochs)


def run_chaos(
    graph: AttributedGraph,
    scenario: str,
    system: str = "ecgraph",
    num_layers: int = 2,
    hidden_dim: int = 16,
    num_workers: int = 4,
    num_epochs: int = 30,
    seed: int = 0,
    checkpoint_dir: str | None = None,
    execution: str = "sync",
) -> ChaosReport:
    """Train ``system`` fault-free and under ``scenario``; compare.

    Both runs share the model/seed/cluster configuration, so every
    difference between them is attributable to the injected faults and
    the tolerance machinery absorbing them. Early stopping is disabled:
    the acceptance question is whether *all* scheduled epochs complete.
    """
    from repro.baselines.systems import SYSTEMS
    from repro.cluster.topology import ClusterSpec
    from repro.core.config import ECGraphConfig, ModelConfig

    faults = build_scenario(scenario, num_epochs, num_workers, seed=seed)
    if checkpoint_dir is not None:
        faults = replace(faults, checkpoint_dir=str(checkpoint_dir))
    base = ECGraphConfig(seed=seed, execution=execution)

    baseline = run_system(
        system, graph, num_layers=num_layers, hidden_dim=hidden_dim,
        num_workers=num_workers, num_epochs=num_epochs, config=base,
    )

    # run_system returns the ConvergenceRun but not the trainer, and the
    # report needs the injector counters — so build the faulty trainer
    # through the same registry factory directly.
    model = ModelConfig(num_layers=num_layers, hidden_dim=hidden_dim)
    spec = ClusterSpec(num_workers=num_workers)
    trainer = SYSTEMS[system](graph, model, spec, replace(base, faults=faults), None)
    try:
        chaos_run = trainer.train(num_epochs, name=f"{system}+{scenario}")
    finally:
        close = getattr(trainer, "close", None)
        if close is not None:
            close()
    counters = trainer.fault_counters or FaultCounters()
    events = tuple(getattr(trainer, "membership_events", []))

    return ChaosReport(
        scenario=scenario,
        fault_config=faults,
        scheduled_epochs=num_epochs,
        completed_epochs=len(chaos_run.epochs),
        counters=counters,
        baseline_accuracy=baseline.final_test_accuracy or 0.0,
        chaos_accuracy=chaos_run.final_test_accuracy or 0.0,
        baseline_seconds=_total_seconds(baseline),
        chaos_seconds=_total_seconds(chaos_run),
        membership_events=events,
    )
