"""Unit tests for the GCN forward/backward kernels (paper Eqs. 2-6).

The backward formulas are verified against finite differences of a full
single-machine forward pass — an error here silently corrupts training,
so these are the most load-bearing tests in the suite.
"""

import numpy as np
import pytest
from scipy.sparse import csr_matrix

from repro.core.gcn_math import (
    bias_gradient,
    layer_backward_inputs,
    layer_forward,
    weight_gradient,
)
from repro.graph.normalize import gcn_normalize
from repro.nn.activations import relu, tanh
from repro.nn.losses import softmax_cross_entropy


@pytest.fixture
def setup():
    rng = np.random.default_rng(0)
    n, d_in, d_hidden, classes = 12, 6, 5, 3
    from repro.graph.generators import GraphSpec, generate_graph

    graph = generate_graph(
        GraphSpec(
            name="grad",
            num_vertices=n,
            avg_degree=3.0,
            feature_dim=d_in,
            num_classes=classes,
            train=6,
            val=3,
            test=3,
            seed=1,
        )
    )
    a = gcn_normalize(graph.adjacency).to_scipy()
    x = graph.features.astype(np.float64)
    w1 = rng.standard_normal((d_in, d_hidden)) * 0.3
    w2 = rng.standard_normal((d_hidden, classes)) * 0.3
    b1 = rng.standard_normal(d_hidden) * 0.1
    b2 = rng.standard_normal(classes) * 0.1
    labels = graph.labels
    mask = graph.train_mask
    return a, x, w1, b1, w2, b2, labels, mask


def _loss(a, x, w1, b1, w2, b2, labels, mask, activation=tanh):
    """Reference 2-layer GCN loss (dense path)."""
    z1 = a @ x @ w1 + b1
    h1 = activation(z1)
    z2 = a @ h1 @ w2 + b2
    return softmax_cross_entropy(
        z2.astype(np.float32), labels, mask
    ).loss


class TestForward:
    def test_aggregate_first_equals_transform_first(self, setup):
        a, x, w1, b1, *_ = setup
        agg = layer_forward(csr_matrix(a), x.astype(np.float32),
                            w1.astype(np.float32), b1.astype(np.float32),
                            relu, is_last=False, transform_first=False)
        tr = layer_forward(csr_matrix(a), x.astype(np.float32),
                           w1.astype(np.float32), b1.astype(np.float32),
                           relu, is_last=False, transform_first=True)
        np.testing.assert_allclose(agg.output, tr.output, atol=1e-4)

    def test_last_layer_skips_activation(self, setup):
        a, x, w1, b1, *_ = setup
        cache = layer_forward(csr_matrix(a), x.astype(np.float32),
                              w1.astype(np.float32), None, relu, is_last=True)
        np.testing.assert_array_equal(cache.output, cache.pre_activation)

    def test_auto_ordering_picks_cheaper(self, setup):
        a, x, w1, b1, *_ = setup
        # d_in=6 > d_out=5 -> transform first.
        cache = layer_forward(csr_matrix(a), x.astype(np.float32),
                              w1.astype(np.float32), None, relu, is_last=False)
        assert cache.transform_first
        assert cache.aggregated is None

    def test_dim_mismatch_rejected(self, setup):
        a, x, w1, *_ = setup
        with pytest.raises(ValueError):
            layer_forward(csr_matrix(a), x[:, :3].astype(np.float32),
                          w1.astype(np.float32), None, relu, is_last=False)


class TestBackwardAgainstFiniteDifferences:
    def test_weight2_gradient(self, setup):
        a, x, w1, b1, w2, b2, labels, mask = setup
        a_sp = csr_matrix(a)
        c1 = layer_forward(a_sp, x.astype(np.float32), w1.astype(np.float32),
                           b1.astype(np.float32), tanh, is_last=False,
                           transform_first=False)
        c2 = layer_forward(a_sp, c1.output, w2.astype(np.float32),
                           b2.astype(np.float32), tanh, is_last=True,
                           transform_first=False)
        result = softmax_cross_entropy(c2.output, labels, mask)
        grad_w2 = weight_gradient(c2, a_sp, result.grad)
        grad_b2 = bias_gradient(result.grad)

        eps = 1e-4
        for i in range(w2.shape[0]):
            for j in range(w2.shape[1]):
                bumped = w2.copy()
                bumped[i, j] += eps
                up = _loss(a, x, w1, b1, bumped, b2, labels, mask)
                bumped[i, j] -= 2 * eps
                down = _loss(a, x, w1, b1, bumped, b2, labels, mask)
                assert grad_w2[i, j] == pytest.approx(
                    (up - down) / (2 * eps), abs=2e-3
                )
        for j in range(b2.shape[0]):
            bumped = b2.copy()
            bumped[j] += eps
            up = _loss(a, x, w1, b1, w2, bumped, labels, mask)
            bumped[j] -= 2 * eps
            down = _loss(a, x, w1, b1, w2, bumped, labels, mask)
            assert grad_b2[j] == pytest.approx((up - down) / (2 * eps), abs=2e-3)

    def test_weight1_gradient_through_propagation(self, setup):
        a, x, w1, b1, w2, b2, labels, mask = setup
        a_sp = csr_matrix(a)
        c1 = layer_forward(a_sp, x.astype(np.float32), w1.astype(np.float32),
                           b1.astype(np.float32), tanh, is_last=False,
                           transform_first=False)
        c2 = layer_forward(a_sp, c1.output, w2.astype(np.float32),
                           b2.astype(np.float32), tanh, is_last=True,
                           transform_first=False)
        result = softmax_cross_entropy(c2.output, labels, mask)
        # Propagate G^2 -> G^1 (Eq. 5; symmetric a plays A^T).
        g1 = layer_backward_inputs(
            a_sp, result.grad, w2.astype(np.float32),
            c1.pre_activation, tanh,
        )
        grad_w1 = weight_gradient(c1, a_sp, g1)

        eps = 1e-4
        rng = np.random.default_rng(3)
        for _ in range(20):
            i = rng.integers(0, w1.shape[0])
            j = rng.integers(0, w1.shape[1])
            bumped = w1.copy()
            bumped[i, j] += eps
            up = _loss(a, x, bumped, b1, w2, b2, labels, mask)
            bumped[i, j] -= 2 * eps
            down = _loss(a, x, bumped, b1, w2, b2, labels, mask)
            assert grad_w1[i, j] == pytest.approx(
                (up - down) / (2 * eps), abs=2e-3
            )

    def test_weight_gradient_transform_first_matches(self, setup):
        """Transform-first drops the aggregated cache; the gradient must
        be recomputed identically."""
        a, x, w1, b1, w2, b2, labels, mask = setup
        a_sp = csr_matrix(a)
        kwargs = dict(weight=w1.astype(np.float32),
                      bias=b1.astype(np.float32))
        agg = layer_forward(a_sp, x.astype(np.float32), activation=tanh,
                            is_last=False, transform_first=False, **kwargs)
        tr = layer_forward(a_sp, x.astype(np.float32), activation=tanh,
                           is_last=False, transform_first=True, **kwargs)
        g = np.random.default_rng(1).standard_normal(
            agg.output.shape
        ).astype(np.float32)
        np.testing.assert_allclose(
            weight_gradient(agg, a_sp, g),
            weight_gradient(tr, a_sp, g),
            atol=1e-3,
        )
