"""Convergence watchdog: catch post-event divergence, decide the cure.

After a membership change (adoption, rejoin) or a corruption burst, the
optimization trajectory can silently diverge — stale adopted state or a
large folded gradient gap pushes the loss off a cliff a few epochs
later. The :class:`ConvergenceWatchdog` watches the per-epoch loss and
gradient norm and *trips* when either goes non-finite (always) or when,
while armed, the loss exceeds ``watchdog_loss_factor`` times the median
of the recent healthy window.

The watchdog only decides; the :class:`~repro.engine.recovery
.RecoveryManager` performs the response (checkpoint rollback, bit-width
escalation, residual reset) and consults :attr:`consecutive` to enforce
the ``max_consecutive_rollbacks`` fail-fast policy.
"""

from __future__ import annotations

import math

import numpy as np

from repro.faults.config import FaultConfig

__all__ = ["ConvergenceWatchdog", "DivergenceError"]


class DivergenceError(ValueError):
    """Training diverged beyond the rollback budget: fail fast.

    Subclasses :class:`ValueError` so the CLI maps it to exit code 2.
    """


class ConvergenceWatchdog:
    """Loss/grad-norm monitor with an armed window after risky events.

    The NaN/Inf check runs every epoch — a non-finite loss is never
    acceptable. The divergence check (loss vs. recent-window median)
    only runs while *armed*, i.e. within ``watchdog_window`` epochs of a
    membership change or corruption burst; steady-state loss wobble on a
    healthy fleet never trips it.
    """

    def __init__(self, faults: FaultConfig):
        self.faults = faults
        self._history: list[float] = []
        self._armed_until = -1
        self.consecutive = 0
        self.trips = 0

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self, epoch: int, reason: str) -> None:
        """Stay armed for ``watchdog_window`` epochs starting at ``epoch``."""
        self._armed_until = max(
            self._armed_until, epoch + self.faults.watchdog_window
        )
        self.last_arm_reason = reason

    def is_armed(self, epoch: int) -> bool:
        return epoch <= self._armed_until

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(
        self, epoch: int, loss: float, grad_norm: float | None = None
    ) -> str | None:
        """Check epoch ``epoch``; return a trip reason or None.

        A healthy epoch extends the loss history (bounded to
        ``watchdog_window``) and resets the consecutive-trip counter. A
        tripped epoch clears the history — post-rollback losses should
        be compared against a fresh window, not the diverged one.
        """
        reason = self._verdict(epoch, loss, grad_norm)
        if reason is None:
            self._history.append(float(loss))
            if len(self._history) > self.faults.watchdog_window:
                del self._history[0]
            self.consecutive = 0
            return None
        self.trips += 1
        self.consecutive += 1
        self._history.clear()
        return reason

    def _verdict(
        self, epoch: int, loss: float, grad_norm: float | None
    ) -> str | None:
        if not math.isfinite(loss):
            return "nan_loss"
        if grad_norm is not None and not math.isfinite(grad_norm):
            return "nan_grad"
        if not self.is_armed(epoch) or not self._history:
            return None
        baseline = float(np.median(self._history))
        if baseline > 0 and loss > self.faults.watchdog_loss_factor * baseline:
            return "divergence"
        return None

    @property
    def exhausted(self) -> bool:
        """True once the consecutive-rollback budget is spent."""
        return self.consecutive >= self.faults.max_consecutive_rollbacks
