"""B-bit bucket quantization — the paper's ``C_bits`` operator (section IV-A).

A matrix is compressed by dividing its value domain into ``2^B`` equal
buckets; every element is replaced by the ``B``-bit id of the bucket that
contains it, and the reply message carries the bucket representative
values so the requesting end can decode. Bucket ids are bit-packed, so a
``d``-dimensional float32 embedding shrinks from ``32 d`` bits to
``B d + 2^B * 32`` bits (the table cost amortizes over the vertices in a
message, as the paper notes).

Two table modes are provided:

* ``"table"`` (paper-faithful): the responder ships the ``2^B``
  representative values explicitly, exactly as Fig. 3 describes;
* ``"bounds"``: only ``(lo, hi)`` are shipped and the requester derives
  the midpoints — an obvious engineering refinement used by the
  ablation benchmarks.

The bit-packing kernels are pure arithmetic: widths that divide a byte
pack by shifting groups of values into byte lanes, 8/16-bit widths
reinterpret the integer buffer directly, and irregular widths tree-merge
adjacent fields (b -> 2b -> 4b -> 8b bits) into byte-aligned 8-value
blocks. No ``(n, bits)`` bit matrix is ever materialized — that intermediate costs 8-16x the payload in
memory traffic and dominated the original implementation (kept as
:mod:`repro.bench.reference` for before/after benchmarking). The wire
layout is unchanged: little-endian-bit-first, byte-identical to
``np.packbits(..., bitorder="little")`` on the expanded bits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["pack_bits", "unpack_bits", "QuantizedMatrix", "BucketQuantizer"]

SUPPORTED_BITS = (1, 2, 4, 8, 16)

# Cached float64 midpoint offsets ``arange(2^B) + 0.5`` per bucket count;
# representative tables are ``lo + offsets * width``, so the arange is the
# only per-call allocation worth hoisting (the arithmetic must stay
# identical to keep decoded values bit-exact across calls).
_MIDPOINT_OFFSETS: dict[int, np.ndarray] = {}


def _midpoint_offsets(buckets: int) -> np.ndarray:
    offsets = _MIDPOINT_OFFSETS.get(buckets)
    if offsets is None:
        offsets = np.arange(buckets, dtype=np.float64) + 0.5
        offsets.setflags(write=False)
        _MIDPOINT_OFFSETS[buckets] = offsets
    return offsets


def packed_size(count: int, bits: int) -> int:
    """Bytes needed to pack ``count`` values of ``bits`` bits each."""
    return (count * bits + 7) // 8


def pack_bits(values: np.ndarray, bits: int) -> np.ndarray:
    """Pack unsigned ``bits``-wide integers into a dense uint8 buffer.

    Values are laid out little-endian-bit-first; :func:`unpack_bits`
    inverts the layout exactly. Values must fit in ``bits`` bits.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    flat = np.ascontiguousarray(values, dtype=np.uint32).ravel()
    if flat.size == 0:
        return np.zeros(0, dtype=np.uint8)
    if int(flat.max()) >= (1 << bits):
        raise ValueError(f"value {int(flat.max())} does not fit in {bits} bits")
    if bits == 8:
        return flat.astype(np.uint8)
    if bits == 16:
        return flat.astype("<u2").view(np.uint8)
    if bits == 1:
        # The values are the bits; packbits needs no expansion here.
        return np.packbits(flat.astype(np.uint8), bitorder="little")
    if bits in (2, 4):
        per_byte = 8 // bits
        if flat.size % per_byte:
            padded = np.zeros(
                (flat.size + per_byte - 1) // per_byte * per_byte,
                dtype=np.uint32,
            )
            padded[: flat.size] = flat
            flat = padded
        acc = flat[0::per_byte].astype(np.uint8)
        for lane in range(1, per_byte):
            acc |= (flat[lane::per_byte] << np.uint32(lane * bits)).astype(
                np.uint8
            )
        return acc
    # Irregular widths (3, 5, 6, 7, 9-15): 8 values always span exactly
    # ``bits`` bytes, so each 8-value block ORs into a 64-bit (or, for
    # widths above 8, 128-bit) little-endian accumulator whose first
    # ``bits`` bytes are the block's wire bytes. Pure vectorized shifts;
    # no per-element scatter.
    total = packed_size(flat.size, bits)
    blocks = (flat.size + 7) // 8
    if bits < 8:
        # Pairwise tree merge: adjacent fields fuse b -> 2b -> 4b -> 8b
        # bits, staying in uint32 until a level would overflow 32 bits.
        # ~n element-ops total and no (blocks, 8) intermediate.
        padded = np.zeros(blocks * 8, dtype=np.uint32)
        padded[: flat.size] = flat
        merged = padded[0::2] | (padded[1::2] << np.uint32(bits))
        merged = merged[0::2] | (merged[1::2] << np.uint32(2 * bits))
        if 8 * bits <= 32:
            merged = merged[0::2] | (merged[1::2] << np.uint32(4 * bits))
            lanes = 4
            block_bytes = merged.astype("<u4").view(np.uint8).reshape(
                blocks, lanes
            )
        else:
            merged = merged[0::2].astype(np.uint64) | (
                merged[1::2].astype(np.uint64) << np.uint64(4 * bits)
            )
            lanes = 8
            block_bytes = merged.astype("<u8").view(np.uint8).reshape(
                blocks, lanes
            )
    else:
        # Bits 9-15: a block spans 8*bits <= 120 bits. Tree-merge pairs
        # (2b <= 30 bits, uint32) and quads (4b <= 60 bits, uint64),
        # then lay the two quads across a low and a high 64-bit lane —
        # the quad straddling the seam splits with one shift each way.
        padded = np.zeros(blocks * 8, dtype=np.uint32)
        padded[: flat.size] = flat
        pairs = padded[0::2] | (padded[1::2] << np.uint32(bits))
        quads = pairs[0::2].astype(np.uint64) | (
            pairs[1::2].astype(np.uint64) << np.uint64(2 * bits)
        )
        lo = quads[0::2] | (quads[1::2] << np.uint64(4 * bits))
        hi = quads[1::2] >> np.uint64(64 - 4 * bits)
        block_bytes = np.empty((blocks, 16), dtype=np.uint8)
        block_bytes[:, :8] = lo.astype("<u8").view(np.uint8).reshape(-1, 8)
        block_bytes[:, 8:] = hi.astype("<u8").view(np.uint8).reshape(-1, 8)
    return block_bytes[:, :bits].ravel()[:total]


def unpack_bits(buffer: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Invert :func:`pack_bits`, recovering ``count`` integers.

    The buffer length must match ``count`` exactly: a short buffer cannot
    hold the promised values and a long one means the caller mis-sliced
    the wire payload — both raise ``ValueError`` instead of silently
    reading (or ignoring) stray bytes.
    """
    if not 1 <= bits <= 16:
        raise ValueError(f"bits must be in [1, 16], got {bits}")
    buf = np.ascontiguousarray(buffer, dtype=np.uint8).ravel()
    needed = packed_size(count, bits)
    if buf.size != needed:
        raise ValueError(
            f"packed buffer holds {buf.size} bytes but {count} values of "
            f"{bits} bits need exactly {needed}"
        )
    if count == 0:
        return np.zeros(0, dtype=np.uint32)
    if bits == 8:
        return buf.astype(np.uint32)
    if bits == 16:
        return buf.view("<u2").astype(np.uint32)
    if bits == 1:
        return np.unpackbits(buf, count=count, bitorder="little").astype(
            np.uint32
        )
    if bits in (2, 4):
        per_byte = 8 // bits
        mask = np.uint32((1 << bits) - 1)
        wide = buf.astype(np.uint32)
        out = np.empty(buf.size * per_byte, dtype=np.uint32)
        for lane in range(per_byte):
            out[lane::per_byte] = (wide >> np.uint32(lane * bits)) & mask
        return out[:count]
    # Irregular widths: the inverse of the 8-value block packing — load
    # each block's ``bits`` bytes into integer lanes and tree-split the
    # eight fields back out, 8b -> 4b -> 2b -> b (see pack_bits).
    blocks = (count + 7) // 8
    padded = np.zeros(blocks * bits, dtype=np.uint8)
    padded[: buf.size] = buf
    block_bytes = padded.reshape(blocks, bits)
    if 8 * bits <= 32:
        # The whole block fits a uint32; one broadcast shift splits all
        # eight fields without intermediate levels.
        lo_bytes = np.zeros((blocks, 4), dtype=np.uint8)
        lo_bytes[:, :bits] = block_bytes
        word = lo_bytes.view("<u4")  # (blocks, 1), broadcasts over lanes
        shifts = (np.arange(8, dtype=np.uint32) * bits).astype(np.uint32)
        fields = (word >> shifts) & np.uint32((1 << bits) - 1)
        return fields.ravel()[:count]
    quads = np.empty(
        blocks * 2, dtype=np.uint32 if 4 * bits <= 32 else np.uint64
    )
    if bits < 8:
        lo_bytes = np.zeros((blocks, 8), dtype=np.uint8)
        lo_bytes[:, :bits] = block_bytes
        word = lo_bytes.view("<u8").ravel()
        quads[0::2] = word & np.uint64((1 << (4 * bits)) - 1)
        quads[1::2] = word >> np.uint64(4 * bits)
    else:
        lo_bytes = np.zeros((blocks, 8), dtype=np.uint8)
        lo_bytes[:, :8] = block_bytes[:, :8]
        hi_bytes = np.zeros((blocks, 8), dtype=np.uint8)
        hi_bytes[:, : bits - 8] = block_bytes[:, 8:]
        lo = lo_bytes.view("<u8").ravel()
        hi = hi_bytes.view("<u8").ravel()
        quads[0::2] = lo & np.uint64((1 << (4 * bits)) - 1)
        quads[1::2] = (lo >> np.uint64(4 * bits)) | (
            hi << np.uint64(64 - 4 * bits)
        )
    pairs = np.empty(blocks * 4, dtype=np.uint32)
    pairs[0::2] = quads & quads.dtype.type((1 << (2 * bits)) - 1)
    pairs[1::2] = quads >> quads.dtype.type(2 * bits)
    mask = np.uint32((1 << bits) - 1)
    out = np.empty(blocks * 8, dtype=np.uint32)
    out[0::2] = pairs & mask
    out[1::2] = pairs >> np.uint32(bits)
    return out[:count]


@dataclass
class QuantizedMatrix:
    """A bucket-quantized matrix ready for the wire.

    Attributes:
        shape: Original matrix shape.
        bits: Bucket id width ``B``.
        packed: Bit-packed bucket ids (uint8 buffer).
        lo / hi: Value-domain bounds used by the quantizer.
        bucket_values: ``(2^B,)`` representative values (bucket midpoints).
        table_mode: ``"table"`` or ``"bounds"`` — what actually travels.
    """

    shape: tuple[int, ...]
    bits: int
    packed: np.ndarray
    lo: float
    hi: float
    bucket_values: np.ndarray
    table_mode: str = "table"

    @property
    def num_elements(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    def decode(self) -> np.ndarray:
        """Reconstruct the approximate matrix."""
        ids = unpack_bits(self.packed, self.bits, self.num_elements)
        return self.bucket_values[ids].reshape(self.shape).astype(np.float32)

    def payload_bytes(self) -> int:
        """Bytes this message occupies on the wire.

        Matches :mod:`repro.cluster.serialize` exactly: a 16-byte frame
        header, an 8-byte shape, 9 bytes of bits/lo/hi metadata, the
        packed ids, and — in ``table`` mode — the ``2^B`` float32 bucket
        representatives (``bounds`` mode derives them from lo/hi).
        """
        header = 16 + 8 + 9  # frame + shape + (bits, lo, hi)
        ids = self.packed.size
        table = self.bucket_values.size * 4 if self.table_mode == "table" else 0
        return header + ids + table


class BucketQuantizer:
    """The paper's ``C_bits``: uniform bucket quantization with B bits.

    The forward pass quantizes embeddings whose domain the paper treats as
    ``[0, 1]``; gradients are not normalized, so the responding end first
    computes ``(min, max)`` (Algorithm 6 lines 4-5). This implementation
    always derives the domain from the data unless explicit bounds are
    given, which covers both uses.
    """

    def __init__(self, bits: int, table_mode: str = "table"):
        if bits not in SUPPORTED_BITS:
            raise ValueError(
                f"bits must be one of {SUPPORTED_BITS}, got {bits}"
            )
        if table_mode not in ("table", "bounds"):
            raise ValueError(f"unknown table_mode {table_mode!r}")
        self.bits = bits
        self.table_mode = table_mode

    @property
    def num_buckets(self) -> int:
        return 1 << self.bits

    def representatives(self, lo: float, hi: float) -> np.ndarray:
        """The ``2^B`` bucket midpoints for the domain ``[lo, hi]``."""
        buckets = self.num_buckets
        span = hi - lo
        if span <= 0.0:
            return np.full(buckets, lo, dtype=np.float32)
        width = span / buckets
        return (lo + _midpoint_offsets(buckets) * width).astype(np.float32)

    def encode_ids(
        self,
        matrix: np.ndarray,
        lo: float | None = None,
        hi: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray, float, float]:
        """Quantize without packing: ``(flat ids, representatives, lo, hi)``.

        The hot half of :meth:`encode`, exposed so callers that need the
        raw bucket ids (candidate scoring, subset slicing in ReqEC-FP)
        quantize exactly once instead of encode-decode-re-encode.
        """
        data = np.asarray(matrix, dtype=np.float32)
        if data.size == 0:
            # An empty matrix still carries its domain on the wire: the
            # all-predicted ReqEC selector message ships zero rows but
            # the requester may rely on (lo, hi) being the true bounds.
            domain_lo = 0.0 if lo is None else float(lo)
            domain_hi = 0.0 if hi is None else float(hi)
            if domain_hi < domain_lo:
                raise ValueError(
                    f"invalid domain: [{domain_lo}, {domain_hi}]"
                )
            reps = self.representatives(domain_lo, domain_hi)
            return (
                np.zeros(0, dtype=np.uint32), reps, domain_lo, domain_hi
            )
        domain_lo = float(data.min()) if lo is None else float(lo)
        domain_hi = float(data.max()) if hi is None else float(hi)
        if domain_hi < domain_lo:
            raise ValueError(f"invalid domain: [{domain_lo}, {domain_hi}]")

        buckets = self.num_buckets
        span = domain_hi - domain_lo
        if span <= 0.0:
            ids = np.zeros(data.size, dtype=np.uint32)
        else:
            width = span / buckets
            scaled = (data.ravel() - domain_lo) / width
            ids = np.clip(scaled.astype(np.int64), 0, buckets - 1).astype(
                np.uint32
            )
        reps = self.representatives(domain_lo, domain_hi)
        return ids, reps, domain_lo, domain_hi

    def encode(
        self,
        matrix: np.ndarray,
        lo: float | None = None,
        hi: float | None = None,
    ) -> QuantizedMatrix:
        """Quantize ``matrix`` into bucket ids plus representatives.

        Args:
            matrix: Any-shape float array.
            lo / hi: Optional explicit domain; defaults to the data range.
                A degenerate domain (``lo == hi``) still round-trips: all
                elements land in bucket 0 whose representative is ``lo``.
                Explicit bounds are honored even for an empty matrix.
        """
        data = np.asarray(matrix, dtype=np.float32)
        ids, reps, domain_lo, domain_hi = self.encode_ids(data, lo, hi)
        return QuantizedMatrix(
            shape=data.shape,
            bits=self.bits,
            packed=pack_bits(ids, self.bits),
            lo=domain_lo,
            hi=domain_hi,
            bucket_values=reps,
            table_mode=self.table_mode,
        )

    def from_ids(
        self,
        ids: np.ndarray,
        shape: tuple[int, ...],
        reps: np.ndarray,
        lo: float,
        hi: float,
    ) -> QuantizedMatrix:
        """Pack pre-computed bucket ids into a wire-ready matrix.

        ``ids`` must come from :meth:`encode_ids` with the same domain —
        slicing a subset of those ids is wire-identical to re-encoding
        the corresponding value subset with explicit ``(lo, hi)``.
        """
        return QuantizedMatrix(
            shape=shape,
            bits=self.bits,
            packed=pack_bits(ids, self.bits),
            lo=lo,
            hi=hi,
            bucket_values=reps,
            table_mode=self.table_mode,
        )

    def quantize(self, matrix: np.ndarray, **kwargs) -> np.ndarray:
        """Encode then immediately decode (the error operator ``C_bits``)."""
        return self.encode(matrix, **kwargs).decode()

    def max_error(self, lo: float, hi: float) -> float:
        """Worst-case absolute error for a value inside ``[lo, hi]``.

        With midpoint representatives this is half the bucket width.
        """
        return (hi - lo) / (2 * self.num_buckets)
