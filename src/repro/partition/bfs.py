"""Streaming BFS/LDG partitioning.

A middle ground between Hash and the METIS-like partitioner: vertices are
visited in BFS order and each is placed greedily where it has the most
already-placed neighbours, penalized by part fullness (the classic Linear
Deterministic Greedy rule). The paper defers streaming partitioners to
future work; we include one both as a baseline for Fig. 11-style sweeps
and because it is the natural choice for graphs too big to hold in memory.
"""

from __future__ import annotations

import time
from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.store.base import GraphStore, as_topology
from repro.partition.base import Partition

__all__ = ["BFSPartitioner"]


class BFSPartitioner:
    """Linear Deterministic Greedy placement over a BFS vertex stream."""

    name = "bfs"

    def __init__(self, seed: int = 0, slack: float = 1.05):
        """Args:
        seed: Seed for BFS root selection.
        slack: Maximum allowed part size as a multiple of the ideal
            ``n / num_parts``; parts at capacity are skipped.
        """
        if slack < 1.0:
            raise ValueError("slack must be >= 1")
        self.seed = seed
        self.slack = slack

    def partition(
        self, graph: CSRGraph | GraphStore, num_parts: int
    ) -> Partition:
        start = time.perf_counter()
        # The traversal is random-access by nature; going through the
        # store keeps out-of-core inputs workable (the LRU residency
        # bounds memory), at the cost of chunk faults when the BFS
        # frontier hops across chunk boundaries.
        graph = as_topology(graph)
        n = graph.num_vertices
        capacity = int(np.ceil(self.slack * n / num_parts))
        assignment = np.full(n, -1, dtype=np.int64)
        sizes = np.zeros(num_parts, dtype=np.int64)
        rng = np.random.default_rng(self.seed)

        order = self._bfs_order(graph, rng)
        for v in order:
            neighbour_counts = np.zeros(num_parts, dtype=np.float64)
            for u in graph.neighbors(int(v)):
                part = assignment[u]
                if part >= 0:
                    neighbour_counts[part] += 1.0
            # LDG score: neighbours already in the part, scaled by the
            # remaining capacity fraction, so full parts become unattractive.
            score = neighbour_counts * (1.0 - sizes / capacity)
            score[sizes >= capacity] = -np.inf
            best = int(np.argmax(score))
            if score[best] == -np.inf:
                best = int(np.argmin(sizes))
            assignment[v] = best
            sizes[best] += 1

        return Partition(
            assignment=assignment,
            num_parts=num_parts,
            method=self.name,
            seconds=time.perf_counter() - start,
        )

    @staticmethod
    def _bfs_order(graph: GraphStore, rng: np.random.Generator) -> np.ndarray:
        """Full BFS traversal order, restarting at random unvisited roots."""
        n = graph.num_vertices
        visited = np.zeros(n, dtype=bool)
        order = np.empty(n, dtype=np.int64)
        cursor = 0
        for root in rng.permutation(n):
            if visited[root]:
                continue
            queue = deque([int(root)])
            visited[root] = True
            while queue:
                v = queue.popleft()
                order[cursor] = v
                cursor += 1
                for u in graph.neighbors(v):
                    if not visited[u]:
                        visited[u] = True
                        queue.append(int(u))
        return order
