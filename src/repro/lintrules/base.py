"""Core machinery of the ``repro lint`` invariant checker.

The checker is a plain :mod:`ast` pass — no third-party dependencies —
that enforces *repo-specific* invariants the test suite can only sample
at runtime: the simulated clock as the single time oracle, seeded
randomness, deterministic iteration order over distributed state,
leak-proof shared-resource lifecycles, defensive wire decoding, and
config/validator/doc agreement. Each rule is a small class with a
stable ``ECGxxx`` code; findings anchor to a file and line.

Suppression is explicit and audited: a finding is silenced only by a
pragma — trailing on the finding's line, or a standalone comment on
the line above it — that names the rule *and* carries a reason::

    for key, slot in state.halo_slots.items():  # ecg: ignore[ECG003] canonical insertion order is bit-pinned

A pragma without a reason, or naming an unknown code, does not
suppress — it becomes an ``ECG000`` finding of its own, so the escape
hatch cannot rot silently. Suppressed findings are kept (flagged
``suppressed=True``) and reported in the summary.

Scoping: rules that apply only to certain packages (``engine/``,
``mp/``, ...) resolve a file's *package path* as the parts after the
last ``repro`` directory component, so fixtures laid out as
``tmp/repro/engine/x.py`` scope exactly like ``src/repro/engine/x.py``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "ModuleInfo",
    "Pragma",
    "Rule",
    "dotted_name",
    "package_parts",
    "parse_pragmas",
]

PRAGMA_RE = re.compile(
    r"#\s*ecg:\s*ignore\[(?P<codes>[^\]]*)\]\s*(?P<reason>.*)$"
)
CODE_RE = re.compile(r"^ECG\d{3}$")

# Code reserved for checker-level problems (unparsable file, malformed
# pragma). ECG000 findings can never be suppressed.
META_CODE = "ECG000"


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    suppressed: bool = False
    reason: str = ""

    def format_text(self) -> str:
        mark = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}{mark}"

    def as_json(self) -> dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# ecg: ignore[...]`` comment.

    A trailing pragma suppresses findings on its own line; a standalone
    comment line suppresses findings on the line below it (so long
    statements can carry a readable pragma above them).
    """

    line: int
    codes: tuple[str, ...]
    reason: str
    standalone: bool = False

    @property
    def applies_to(self) -> int:
        return self.line + 1 if self.standalone else self.line

    @property
    def valid(self) -> bool:
        return bool(self.reason.strip()) and all(
            CODE_RE.match(code) for code in self.codes
        ) and bool(self.codes)


def parse_pragmas(source: str) -> list[Pragma]:
    """Extract every ``ecg: ignore`` pragma with its physical line.

    Only real ``COMMENT`` tokens count — a pragma *example* quoted in a
    docstring is text, not a suppression. Unreadable token streams fall
    back to no pragmas (the caller reports the parse failure).
    """
    pragmas: list[Pragma] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return pragmas
    lines = source.splitlines()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = PRAGMA_RE.search(token.string)
        if match is None:
            continue
        codes = tuple(
            part.strip() for part in match.group("codes").split(",")
            if part.strip()
        )
        lineno, col = token.start
        before = lines[lineno - 1][:col] if lineno <= len(lines) else ""
        pragmas.append(
            Pragma(
                line=lineno,
                codes=codes,
                reason=match.group("reason").strip(),
                standalone=not before.strip(),
            )
        )
    return pragmas


def package_parts(path: Path) -> tuple[str, ...]:
    """Path parts *after* the last ``repro`` directory component.

    ``src/repro/engine/transport.py`` -> ``("engine", "transport.py")``;
    files outside any ``repro`` tree resolve to just their filename, so
    package-scoped rules stay quiet on them.
    """
    parts = path.parts
    if "repro" in parts[:-1]:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return tuple(parts[idx + 1:])
    return (path.name,)


def dotted_name(node: ast.AST) -> str:
    """Reconstruct ``a.b.c`` from a Name/Attribute chain ('' otherwise)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@dataclass
class ModuleInfo:
    """One parsed source file handed to every rule."""

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    pragmas: list[Pragma] = field(default_factory=list)

    @property
    def parts(self) -> tuple[str, ...]:
        return package_parts(self.path)

    @property
    def package(self) -> str:
        """First package component under ``repro`` ('' for bare files)."""
        parts = self.parts
        return parts[0] if len(parts) > 1 else ""

    def in_packages(self, *packages: str) -> bool:
        return self.package in packages

    def finding(
        self, code: str, message: str, node: ast.AST | None = None,
        line: int = 0, col: int = 0,
    ) -> Finding:
        if node is not None:
            line = getattr(node, "lineno", line)
            col = getattr(node, "col_offset", col)
        return Finding(
            code=code, message=message, path=self.display_path,
            line=line, col=col,
        )


class Rule:
    """Base class: one invariant, one stable code.

    Subclasses set ``code``/``name``/``summary`` and implement
    :meth:`check`, yielding findings for one module. The module
    docstring of each rule is its user-facing documentation.
    """

    code: str = ""
    name: str = ""
    summary: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def walk(self, module: ModuleInfo) -> Iterable[ast.AST]:
        return ast.walk(module.tree)
