"""Unit tests for the adaptive Bit-Tuner."""

import pytest

from repro.core.bit_tuner import BIT_LADDER, BitTuner

PAIR = (0, 1)


class TestTuning:
    def test_initial_bits(self):
        tuner = BitTuner(initial_bits=4)
        assert tuner.bits(PAIR) == 4

    def test_high_proportion_doubles(self):
        tuner = BitTuner(initial_bits=4)
        assert tuner.update(PAIR, 0.7) == 8
        assert tuner.bits(PAIR) == 8

    def test_low_proportion_halves(self):
        tuner = BitTuner(initial_bits=4)
        assert tuner.update(PAIR, 0.3) == 2

    def test_middle_band_stable(self):
        tuner = BitTuner(initial_bits=4)
        assert tuner.update(PAIR, 0.5) == 4

    def test_thresholds_exclusive(self):
        # Exactly 0.6 / 0.4 do not trigger (paper: "more than", "below").
        tuner = BitTuner(initial_bits=4)
        assert tuner.update(PAIR, 0.6) == 4
        assert tuner.update(PAIR, 0.4) == 4

    def test_ceiling_at_16(self):
        tuner = BitTuner(initial_bits=16)
        assert tuner.update(PAIR, 0.99) == 16

    def test_floor_at_1(self):
        tuner = BitTuner(initial_bits=1)
        assert tuner.update(PAIR, 0.0) == 1

    def test_ladder_walk(self):
        tuner = BitTuner(initial_bits=1)
        widths = [tuner.update(PAIR, 0.9) for _ in range(6)]
        assert widths == [2, 4, 8, 16, 16, 16]
        assert all(w in BIT_LADDER for w in widths)

    def test_per_pair_independence(self):
        tuner = BitTuner(initial_bits=4)
        tuner.update((0, 1), 0.9)
        assert tuner.bits((0, 1)) == 8
        assert tuner.bits((2, 1)) == 4

    def test_disabled_tuner_never_moves(self):
        tuner = BitTuner(initial_bits=4, enabled=False)
        assert tuner.update(PAIR, 0.99) == 4
        assert tuner.update(PAIR, 0.0) == 4

    def test_history_records_changes(self):
        tuner = BitTuner(initial_bits=4)
        tuner.update(PAIR, 0.9)
        tuner.update(PAIR, 0.5)
        tuner.update(PAIR, 0.1)
        assert tuner.history() == [(PAIR, 8), (PAIR, 4)]

    def test_reset(self):
        tuner = BitTuner(initial_bits=4)
        tuner.update(PAIR, 0.9)
        tuner.reset()
        assert tuner.bits(PAIR) == 4
        assert tuner.history() == []


class TestValidation:
    def test_off_ladder_initial(self):
        with pytest.raises(ValueError):
            BitTuner(initial_bits=3)

    def test_bad_thresholds(self):
        with pytest.raises(ValueError):
            BitTuner(raise_threshold=0.4, lower_threshold=0.6)

    def test_bad_proportion(self):
        tuner = BitTuner()
        with pytest.raises(ValueError):
            tuner.update(PAIR, 1.5)
