"""Unit tests for graph (de)serialization."""

import numpy as np
import pytest

from repro.graph.generators import GraphSpec, generate_graph
from repro.graph.io import load_graph, save_graph


@pytest.fixture
def graph():
    return generate_graph(
        GraphSpec(
            name="io-test",
            num_vertices=60,
            avg_degree=4.0,
            feature_dim=8,
            num_classes=2,
            seed=1,
        )
    )


class TestRoundTrip:
    def test_structure_preserved(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        np.testing.assert_array_equal(
            loaded.adjacency.indptr, graph.adjacency.indptr
        )
        np.testing.assert_array_equal(
            loaded.adjacency.indices, graph.adjacency.indices
        )

    def test_attributes_preserved(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        np.testing.assert_array_equal(loaded.features, graph.features)
        np.testing.assert_array_equal(loaded.labels, graph.labels)
        np.testing.assert_array_equal(loaded.train_mask, graph.train_mask)
        assert loaded.num_classes == graph.num_classes
        assert loaded.name == graph.name

    def test_meta_preserved(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.meta["generator"] == "planted_partition"

    def test_weighted_adjacency_roundtrip(self, graph, tmp_path):
        from repro.graph.normalize import gcn_normalize

        graph.adjacency = gcn_normalize(graph.adjacency)
        path = tmp_path / "weighted.npz"
        save_graph(graph, path)
        loaded = load_graph(path)
        np.testing.assert_allclose(
            loaded.adjacency.weights, graph.adjacency.weights
        )

    def test_creates_parent_dirs(self, graph, tmp_path):
        path = tmp_path / "deep" / "nested" / "g.npz"
        save_graph(graph, path)
        assert path.exists()


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(tmp_path / "missing.npz")

    def test_wrong_version_rejected(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_graph(graph, path)
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.int64(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="version"):
            load_graph(path)
