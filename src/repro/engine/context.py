"""The ExchangeContext: one bundle for everything a stage touches.

Before the staged engine, the trainer passed its collaborators around ad
hoc — every forward/backward method re-threaded the compression
policies, the Bit-Tuner, the fault injector, telemetry, the cluster
runtime and the checkpoint hooks through its own plumbing. The
:class:`ExchangeContext` bundles them once; every
:mod:`~repro.engine.stages` stage and :mod:`~repro.engine.backends`
backend receives the same context object and asks it for exchanges
instead of wiring policies and categories by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.cluster.engine import ClusterRuntime
from repro.cluster.param_server import ParameterServerGroup
from repro.cluster.topology import ClusterSpec
from repro.core.bit_tuner import BitTuner
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.models import GNNParameters
from repro.core.worker import WorkerState
from repro.engine.transport import HaloTransport
from repro.graph.attributed import AttributedGraph
from repro.graph.store.base import GraphStoreBundle
from repro.obs.telemetry import Telemetry

if TYPE_CHECKING:
    from repro.engine.recovery import RecoveryManager
    from repro.faults.injector import FaultInjector
    from repro.membership.view import MembershipView

__all__ = ["ExchangeContext"]

# Traffic-meter categories per exchange direction (paper Fig. 6 labels).
_DIRECTION_CATEGORIES = {"fp": "fp_embeddings", "bp": "bp_gradients"}


@dataclass
class ExchangeContext:
    """Everything one training iteration needs, bundled once.

    Built by the trainer facade at the end of ``setup()`` and handed to
    the :class:`~repro.engine.core.TrainerCore`; stages and backends
    treat it as read-only shared state. The ``recovery`` hook is
    attached after construction (it needs the context itself).
    """

    config: ECGraphConfig
    model_config: ModelConfig
    # Stages touch only the narrow duck-typed surface the two share
    # (feature_dim, num_classes, masks, adjacency.indptr), so the graph
    # may live out-of-core behind a bundle.
    graph: AttributedGraph | GraphStoreBundle
    spec: ClusterSpec
    runtime: ClusterRuntime
    servers: ParameterServerGroup
    workers: list[WorkerState]
    params: GNNParameters
    tuner: BitTuner
    fp_policy: object
    bp_policy: object
    transport: HaloTransport
    telemetry: Telemetry
    injector: "FaultInjector | None" = None
    global_train_count: int = 0
    recovery: "RecoveryManager | None" = field(default=None, repr=False)
    membership: "MembershipView | None" = field(default=None, repr=False)
    # Execution backend (where worker kernels run): a SyncExecutor by
    # default (inline), or a ProcessExecutor for real worker processes.
    # Bound to the backend by the TrainerCore (see repro.engine.executor).
    executor: object = field(default=None, repr=False)

    def active_workers(self) -> list[WorkerState]:
        """Worker states participating in this iteration.

        Without elastic membership this is exactly ``workers`` — the
        same list object, same iteration order — so non-elastic runs
        stay bit-identical. With a membership view attached, dead
        workers (which keep their slot as empty states) are skipped.
        """
        if self.membership is None:
            return self.workers
        return [
            state for state in self.workers
            if self.membership.is_alive(state.worker_id)
        ]

    # ------------------------------------------------------------------
    # Exchange helpers: stages name a direction, the context supplies
    # the policy and the traffic category.
    # ------------------------------------------------------------------
    def exchange(
        self,
        direction: str,
        layer: int,
        t: int,
        rows_of: Callable[[WorkerState], np.ndarray],
        dim: int,
        subset: dict[tuple[int, int], np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Forward-style halo fetch for ``direction`` ("fp" or "bp")."""
        return self.transport.exchange(
            layer=layer,
            t=t,
            rows_of=rows_of,
            policy=self.policy_for(direction),
            category=_DIRECTION_CATEGORIES[direction],
            dim=dim,
            subset=subset,
        )

    def reverse_exchange(
        self,
        layer: int,
        t: int,
        halo_rows_of: Callable[[WorkerState], np.ndarray],
        dim: int,
    ) -> list[np.ndarray]:
        """Reverse (consumer -> owner) gradient push, backward policy."""
        return self.transport.reverse_exchange(
            layer=layer,
            t=t,
            halo_rows_of=halo_rows_of,
            policy=self.bp_policy,
            category=_DIRECTION_CATEGORIES["bp"],
            dim=dim,
        )

    def policy_for(self, direction: str) -> object:
        if direction not in _DIRECTION_CATEGORIES:
            raise ValueError(f"unknown exchange direction {direction!r}")
        return self.fp_policy if direction == "fp" else self.bp_policy

    def update_tuner(self) -> None:
        """Feed the last exchange's predicted-win proportions to the
        Bit-Tuner (Algorithm 3; ReqEC-FP mode only)."""
        if self.config.fp_mode != "reqec":
            return
        for pair, proportion in self.transport.last_proportions().items():
            self.tuner.update(pair, proportion)
