"""Tests for the high-level API and the system registry plumbing."""

import pytest

from repro import ECGraphConfig, train_ecgraph
from repro.baselines import run_system
from repro.cluster import ClusterSpec, NetworkModel
from repro.core.config import ECGraphConfig as CoreConfig
from repro.core.sampling_trainer import SampledECGraphTrainer
from repro.core.config import ModelConfig


class TestTrainECGraph:
    def test_defaults_run(self, small_graph):
        run = train_ecgraph(small_graph, num_workers=2, num_epochs=3,
                            hidden_dim=4)
        assert run.num_epochs == 3
        assert run.final_test_accuracy is not None

    def test_custom_cluster_overrides_workers(self, small_graph):
        cluster = ClusterSpec(
            num_workers=3,
            network=NetworkModel(bandwidth_bytes_per_s=1e6, latency_s=0),
        )
        run = train_ecgraph(small_graph, num_workers=99, num_epochs=2,
                            hidden_dim=4, cluster=cluster)
        assert run.meta["num_workers"] == 3

    def test_named_run(self, small_graph):
        run = train_ecgraph(small_graph, num_workers=2, num_epochs=2,
                            hidden_dim=4, name="my-run")
        assert run.name == "my-run"

    def test_partitioner_choice(self, small_graph):
        run = train_ecgraph(small_graph, num_workers=2, num_epochs=2,
                            hidden_dim=4, partitioner="metis")
        assert run.num_epochs == 2

    def test_config_passthrough(self, small_graph):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw")
        run = train_ecgraph(small_graph, num_workers=2, num_epochs=2,
                            hidden_dim=4, config=config)
        assert run.meta["fp_mode"] == "raw"


class TestRunSystemPlumbing:
    def test_explicit_cluster(self, small_graph):
        cluster = ClusterSpec(num_workers=2, num_servers=2)
        run = run_system("ecgraph", small_graph, num_epochs=2,
                         hidden_dim=4, cluster=cluster)
        assert run.meta["num_workers"] == 2

    def test_explicit_fanouts(self, medium_graph):
        run = run_system("ecgraph_s", medium_graph, num_workers=2,
                         num_epochs=3, hidden_dim=4, fanouts=[3, 3])
        assert run.num_epochs == 3

    def test_base_config_bits_inherited(self, small_graph):
        config = CoreConfig(fp_bits=8, bp_bits=8)
        run = run_system("cponly", small_graph, num_workers=2,
                         num_epochs=2, hidden_dim=4, config=config)
        assert run.meta["fp_bits"] == 8


class TestSamplingGuards:
    def test_delayed_rejected_in_sampling_mode(self, small_graph):
        with pytest.raises(ValueError, match="delayed"):
            SampledECGraphTrainer(
                small_graph, ModelConfig(num_layers=2),
                ClusterSpec(num_workers=2), fanouts=[3, 3],
                config=CoreConfig(fp_mode="delayed", bp_mode="raw"),
            )
