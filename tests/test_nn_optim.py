"""Unit tests for optimizers (the server-side update rules)."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, AdaGrad, Momentum, make_optimizer


def _quadratic_descent(optimizer, steps=200, dim=4):
    """Minimize ||x - target||^2; returns the final distance to target."""
    rng = np.random.default_rng(0)
    target = rng.standard_normal(dim).astype(np.float32)
    params = {"x": np.zeros(dim, dtype=np.float32)}
    for _ in range(steps):
        grads = {"x": 2.0 * (params["x"] - target)}
        optimizer.step(params, grads)
    return float(np.linalg.norm(params["x"] - target))


class TestSGD:
    def test_converges_on_quadratic(self):
        assert _quadratic_descent(SGD(lr=0.1)) < 1e-4

    def test_single_step_formula(self):
        opt = SGD(lr=0.5)
        params = {"w": np.array([1.0, 2.0], dtype=np.float32)}
        opt.step(params, {"w": np.array([0.2, -0.2])})
        np.testing.assert_allclose(params["w"], [0.9, 2.1], atol=1e-6)

    def test_weight_decay_pulls_toward_zero(self):
        opt = SGD(lr=0.1, weight_decay=1.0)
        params = {"w": np.array([1.0], dtype=np.float32)}
        opt.step(params, {"w": np.array([0.0])})
        assert params["w"][0] < 1.0

    def test_unknown_parameter_raises(self):
        opt = SGD(lr=0.1)
        with pytest.raises(KeyError):
            opt.step({"a": np.zeros(1)}, {"b": np.zeros(1)})

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)

    def test_missing_gradient_leaves_param_untouched(self):
        opt = SGD(lr=0.1)
        params = {
            "a": np.ones(2, dtype=np.float32),
            "b": np.ones(2, dtype=np.float32),
        }
        opt.step(params, {"a": np.ones(2)})
        np.testing.assert_array_equal(params["b"], [1.0, 1.0])


class TestMomentum:
    def test_converges(self):
        assert _quadratic_descent(Momentum(lr=0.05, momentum=0.9)) < 1e-4

    def test_velocity_accumulates(self):
        opt = Momentum(lr=1.0, momentum=0.5)
        params = {"w": np.zeros(1, dtype=np.float32)}
        opt.step(params, {"w": np.array([1.0])})
        first = params["w"].copy()
        opt.step(params, {"w": np.array([1.0])})
        # Second step moves further: grad + 0.5 * previous velocity.
        assert abs(params["w"][0] - first[0]) > abs(first[0])

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            Momentum(lr=0.1, momentum=1.0)

    def test_reset_clears_velocity(self):
        opt = Momentum(lr=0.1)
        opt.step({"w": np.zeros(1, dtype=np.float32)}, {"w": np.ones(1)})
        assert list(opt.state_names())
        opt.reset()
        assert not list(opt.state_names())


class TestAdam:
    def test_converges(self):
        assert _quadratic_descent(Adam(lr=0.1), steps=400) < 1e-3

    def test_first_step_size_is_lr(self):
        # With bias correction the first Adam step is ~lr regardless of
        # gradient magnitude.
        opt = Adam(lr=0.01)
        params = {"w": np.zeros(1, dtype=np.float32)}
        opt.step(params, {"w": np.array([123.0])})
        assert abs(params["w"][0]) == pytest.approx(0.01, rel=1e-3)

    def test_per_parameter_timestep(self):
        opt = Adam(lr=0.01)
        params = {
            "a": np.zeros(1, dtype=np.float32),
            "b": np.zeros(1, dtype=np.float32),
        }
        opt.step(params, {"a": np.ones(1)})
        opt.step(params, {"a": np.ones(1), "b": np.ones(1)})
        # b's first step should also be ~lr despite a being at t=2.
        assert abs(params["b"][0]) == pytest.approx(0.01, rel=1e-3)

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam(lr=0.1, beta1=1.0)

    def test_deterministic(self):
        results = []
        for _ in range(2):
            opt = Adam(lr=0.05)
            params = {"w": np.zeros(3, dtype=np.float32)}
            for step in range(5):
                opt.step(params, {"w": np.full(3, 0.5 + step)})
            results.append(params["w"].copy())
        np.testing.assert_array_equal(results[0], results[1])


class TestAdaGrad:
    def test_converges(self):
        assert _quadratic_descent(AdaGrad(lr=1.0), steps=500) < 1e-2

    def test_step_size_shrinks(self):
        opt = AdaGrad(lr=1.0)
        params = {"w": np.zeros(1, dtype=np.float32)}
        opt.step(params, {"w": np.ones(1)})
        first = abs(params["w"][0])
        before = params["w"][0]
        opt.step(params, {"w": np.ones(1)})
        second = abs(params["w"][0] - before)
        assert second < first


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("sgd", SGD), ("momentum", Momentum), ("adam", Adam),
        ("adagrad", AdaGrad), ("ADAM", Adam),
    ])
    def test_make(self, name, cls):
        assert isinstance(make_optimizer(name, lr=0.1), cls)

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="adam"):
            make_optimizer("lamb", lr=0.1)
