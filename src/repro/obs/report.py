"""One-page epoch reports: the ``repro report`` renderer.

Takes one instrumented :class:`~repro.core.results.ConvergenceRun` and
renders everything its :class:`~repro.obs.telemetry.TelemetryReport`
collected into a single self-contained artifact:

* the **stage timeline** — per-stage wall/modelled time with critical
  stage and straggler attribution (:mod:`repro.obs.profiler`);
* the **bandwidth waterfall** — heaviest channels by wire bytes with
  effective bit-widths (:mod:`repro.obs.ledger`);
* the **compression frontier** — ReqEC candidate-win fractions and the
  Bit-Tuner width trajectory (:mod:`repro.obs.health`);
* **fault and recovery counters** mirrored from the metrics registry.

Two formats: GitHub-flavoured markdown, and a single HTML file with
inline CSS (no external assets, so it uploads as one CI artifact and
opens anywhere). Both render from the same :func:`build_report` dict,
which is also what the tests assert against.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path

from repro.obs.profiler import ENGINE_STAGES

__all__ = [
    "build_report",
    "missing_stages",
    "render_markdown",
    "render_html",
    "write_report",
]


# ----------------------------------------------------------------------
# Data extraction
# ----------------------------------------------------------------------

_FAULT_COUNTERS = (
    "fault_retries",
    "fault_delays",
    "fault_message_failures",
    "fault_crashes",
    "fault_checkpoint_corrupt",
    "fault_params_rolled_back",
    "fault_residual_compensations",
    # Elastic membership / convergence watchdog (exported to Prometheus
    # with the ``ecgraph_`` prefix, satisfying the ``ecgraph_membership_*``
    # / ``ecgraph_watchdog_*`` naming contract).
    "membership_lost",
    "membership_adoptions",
    "membership_rejoins",
    "watchdog_trips",
    "watchdog_rollbacks",
    "watchdog_escalations",
)


def build_report(run) -> dict:
    """Distill one run into the JSON-ready dict the renderers consume.

    ``run`` is a :class:`~repro.core.results.ConvergenceRun`; its
    ``telemetry`` may be ``None`` (un-instrumented run), in which case
    the observability sections come out empty but the convergence
    summary still renders.
    """
    tel = run.telemetry
    data: dict = {
        "name": run.name,
        "meta": dict(run.meta),
        "summary": {
            "epochs": run.num_epochs,
            "training_seconds": run.training_seconds(),
            "preprocessing_seconds": run.preprocessing_seconds,
            "avg_epoch_seconds": run.avg_epoch_seconds(),
            "total_bytes": run.total_bytes(),
            "best_test_accuracy": run.best_test_accuracy(),
            "final_loss": run.epochs[-1].loss if run.epochs else None,
        },
        "loss_curve": [
            {"epoch": e.epoch, "loss": e.loss, "test_accuracy": e.test_accuracy}
            for e in run.epochs
        ],
        "stages": {},
        "epoch_timelines": [],
        "straggler_counts": {},
        "coverage": None,
        "channels": [],
        "directions": {},
        "health": None,
        "faults": {},
        "membership_events": [],
        "dropped_spans": 0,
    }
    if tel is None:
        return data

    data["dropped_spans"] = tel.dropped_spans

    profile = tel.profile
    if profile is not None and profile.epochs:
        data["stages"] = profile.stage_totals()
        data["coverage"] = profile.coverage()
        data["straggler_counts"] = {
            str(w): c for w, c in sorted(profile.straggler_counts().items())
        }
        data["epoch_timelines"] = [
            {
                "epoch": t.epoch,
                "wall_seconds": t.wall_seconds,
                "modelled_seconds": t.modelled_seconds,
                "critical_stage": t.critical_stage(),
            }
            for t in profile.epochs
        ]

    ledger = tel.ledger
    if ledger is not None and ledger.events:
        data["membership_events"] = [dict(e) for e in ledger.events]
    if ledger is not None and ledger.channels:
        data["directions"] = ledger.direction_totals()
        data["channels"] = [
            {
                "channel": f"{responder}->{consumer}/L{layer}/{direction}",
                **record.as_dict(),
            }
            for (responder, consumer, layer, direction), record
            in ledger.top_channels(15)
        ]

    if tel.health is not None:
        data["health"] = tel.health.as_dict()

    metrics = tel.metrics
    faults = {}
    for name in _FAULT_COUNTERS:
        total = metrics.counter_total(name)
        if total:
            faults[name] = total
    degraded = metrics.counters_by_label("fault_degraded", "kind")
    if degraded:
        faults["fault_degraded"] = {
            kind: degraded[kind] for kind in sorted(degraded)
        }
    data["faults"] = faults
    return data


def missing_stages(data: dict) -> list[str]:
    """Engine stages absent from the report's profile section.

    A healthy instrumented run profiles all of
    :data:`~repro.obs.profiler.ENGINE_STAGES`; anything returned here
    means the profiler lost a stage (CI fails on it in ``--smoke``).
    """
    present = set(data.get("stages", {}))
    return [stage for stage in ENGINE_STAGES if stage not in present]


# ----------------------------------------------------------------------
# Shared formatting helpers
# ----------------------------------------------------------------------

def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    return f"{value * 1e3:.3f}ms"


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024 or unit == "GiB":
            return (
                f"{value:.0f}{unit}" if unit == "B" else f"{value:.2f}{unit}"
            )
        value /= 1024
    return f"{value:.2f}GiB"


def _stage_rows(data: dict) -> list[tuple]:
    rows = []
    stages = data.get("stages", {})
    for stage in list(ENGINE_STAGES) + sorted(set(stages) - set(ENGINE_STAGES)):
        agg = stages.get(stage)
        if agg is None:
            continue
        rows.append((
            stage, agg["count"], agg["wall_seconds"], agg["compute_seconds"],
            agg["comm_seconds"], agg["bytes_sent"], agg["messages"],
        ))
    return rows


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------

def render_markdown(data: dict) -> str:
    """Render the report dict as GitHub-flavoured markdown."""
    lines: list[str] = [f"# Epoch report: {data['name']}", ""]
    summary = data["summary"]
    lines += [
        "## Run summary",
        "",
        f"- epochs: {summary['epochs']}",
        f"- modelled training time: {_fmt_seconds(summary['training_seconds'])}"
        f" (avg epoch {_fmt_seconds(summary['avg_epoch_seconds'])})",
        f"- inter-machine traffic: {_fmt_bytes(summary['total_bytes'])}",
        f"- best test accuracy: {summary['best_test_accuracy']:.4f}",
    ]
    if summary["final_loss"] is not None:
        lines.append(f"- final loss: {summary['final_loss']:.6f}")
    if data["dropped_spans"]:
        lines.append(f"- **dropped spans: {data['dropped_spans']}** "
                     "(trace truncated; raise ObsConfig.max_spans)")
    lines.append("")

    rows = _stage_rows(data)
    if rows:
        lines += ["## Stage timeline", ""]
        if data["coverage"] is not None:
            lines.append(f"Stage coverage of epoch wall time: "
                         f"{data['coverage'] * 100:.1f}%")
            lines.append("")
        lines.append(
            "| stage | runs | wall | modelled compute | modelled comm |"
            " bytes | msgs |"
        )
        lines.append("|---|---:|---:|---:|---:|---:|---:|")
        for stage, count, wall, compute, comm, nbytes, msgs in rows:
            lines.append(
                f"| {stage} | {count} | {_fmt_seconds(wall)} |"
                f" {_fmt_seconds(compute)} | {_fmt_seconds(comm)} |"
                f" {_fmt_bytes(nbytes)} | {msgs} |"
            )
        lines.append("")
        if data["straggler_counts"]:
            pairs = ", ".join(
                f"worker {w}: {c}"
                for w, c in data["straggler_counts"].items()
            )
            lines.append(f"Stage barriers bounded by: {pairs}")
            lines.append("")
        if data["epoch_timelines"]:
            crit: dict[str, int] = {}
            for t in data["epoch_timelines"]:
                if t["critical_stage"]:
                    crit[t["critical_stage"]] = (
                        crit.get(t["critical_stage"], 0) + 1
                    )
            pairs = ", ".join(f"{s} ({c} epochs)" for s, c in crit.items())
            lines.append(f"Critical stage per epoch: {pairs}")
            lines.append("")

    if data["channels"]:
        lines += ["## Bandwidth waterfall (top channels)", ""]
        lines.append(
            "| channel | wire | metered | frames | retries | degraded |"
            " eff. bits/elem |"
        )
        lines.append("|---|---:|---:|---:|---:|---:|---:|")
        for ch in data["channels"]:
            degraded = (
                ch["degraded_predicted"] + ch["degraded_cached"]
                + ch["degraded_zero"]
            )
            lines.append(
                f"| {ch['channel']} | {_fmt_bytes(ch['wire_bytes'])} |"
                f" {_fmt_bytes(ch['metered_bytes'])} | {ch['frames']} |"
                f" {ch['retries']} | {degraded} |"
                f" {ch['effective_bits']:.2f} |"
            )
        lines.append("")
        if data["directions"]:
            lines.append("Direction totals:")
            lines.append("")
            for direction, agg in sorted(data["directions"].items()):
                lines.append(
                    f"- `{direction}`: {_fmt_bytes(agg['metered_bytes'])} "
                    f"metered over {agg['channels']} channels, "
                    f"{agg['frames']} frames, {agg['retries']} retries"
                )
            lines.append("")

    health = data["health"]
    if health is not None:
        lines += ["## Compression frontier", ""]
        fractions = health.get("candidate_fractions", {})
        if fractions:
            parts = ", ".join(
                f"{name}: {frac * 100:.1f}%"
                for name, frac in sorted(fractions.items())
            )
            lines.append(f"- ReqEC-FP candidate wins — {parts}")
        bits_current = health.get("bits_current", {})
        if bits_current:
            parts = ", ".join(
                f"{pair}: {bits}b" for pair, bits in sorted(bits_current.items())
            )
            lines.append(f"- Bit-Tuner current widths — {parts}")
        events = health.get("bits_events", [])
        lines.append(f"- Bit-Tuner width changes: {len(events)}")
        violations = health.get("violations", [])
        if violations:
            lines.append("- **Theorem-1 violations:**")
            for violation in violations:
                lines.append(f"  - {violation}")
        else:
            lines.append("- Theorem-1 residual checks: all within bound")
        lines.append("")

    if data["faults"]:
        lines += ["## Faults and recovery", ""]
        for name, value in sorted(data["faults"].items()):
            if isinstance(value, dict):
                inner = ", ".join(f"{k}: {v:.0f}" for k, v in value.items())
                lines.append(f"- {name}: {inner}")
            else:
                lines.append(f"- {name}: {value:.0f}")
        lines.append("")

    if data.get("membership_events"):
        lines += ["## Membership timeline", ""]
        lines.append("| epoch | event | details |")
        lines.append("|---:|---|---|")
        for event in data["membership_events"]:
            details = ", ".join(
                f"{k}={v}" for k, v in sorted(event.items())
                if k not in ("kind", "epoch")
            )
            lines.append(
                f"| {event['epoch']} | {event['kind']} | {details} |"
            )
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


# ----------------------------------------------------------------------
# HTML
# ----------------------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1b1f24; }
h1 { border-bottom: 2px solid #d0d7de; padding-bottom: .3rem; }
h2 { margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #d0d7de; padding: .3rem .6rem;
         font-size: .9rem; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { background: #f6f8fa; }
.bar { display: inline-block; height: .7rem; background: #4c9aff;
       vertical-align: middle; margin-right: .4rem; }
.bar.comm { background: #ff8f73; }
.warn { color: #b42318; font-weight: 600; }
.ok { color: #1a7f37; }
ul { line-height: 1.6; }
"""


def _bar(value: float, biggest: float, cls: str = "bar") -> str:
    if biggest <= 0:
        return ""
    width = max(1.0, 220.0 * value / biggest)
    return f'<span class="{cls}" style="width:{width:.0f}px"></span>'


def render_html(data: dict) -> str:
    """Render the report dict as one self-contained HTML document."""
    esc = _html.escape
    parts: list[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>Epoch report: {esc(data['name'])}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Epoch report: {esc(data['name'])}</h1>",
    ]
    summary = data["summary"]
    parts.append("<h2>Run summary</h2><ul>")
    parts.append(f"<li>epochs: {summary['epochs']}</li>")
    parts.append(
        "<li>modelled training time: "
        f"{_fmt_seconds(summary['training_seconds'])} (avg epoch "
        f"{_fmt_seconds(summary['avg_epoch_seconds'])})</li>"
    )
    parts.append(
        f"<li>inter-machine traffic: "
        f"{_fmt_bytes(summary['total_bytes'])}</li>"
    )
    parts.append(
        f"<li>best test accuracy: {summary['best_test_accuracy']:.4f}</li>"
    )
    if summary["final_loss"] is not None:
        parts.append(f"<li>final loss: {summary['final_loss']:.6f}</li>")
    if data["dropped_spans"]:
        parts.append(
            f"<li class='warn'>dropped spans: {data['dropped_spans']}"
            " (trace truncated; raise ObsConfig.max_spans)</li>"
        )
    parts.append("</ul>")

    rows = _stage_rows(data)
    if rows:
        parts.append("<h2>Stage timeline</h2>")
        if data["coverage"] is not None:
            parts.append(
                f"<p>Stage coverage of epoch wall time: "
                f"{data['coverage'] * 100:.1f}%</p>"
            )
        biggest = max(r[2] for r in rows)
        parts.append(
            "<table><tr><th>stage</th><th>wall</th><th>runs</th>"
            "<th>modelled compute</th><th>modelled comm</th>"
            "<th>bytes</th><th>msgs</th></tr>"
        )
        for stage, count, wall, compute, comm, nbytes, msgs in rows:
            parts.append(
                f"<tr><td>{esc(stage)}</td>"
                f"<td>{_bar(wall, biggest)}{_fmt_seconds(wall)}</td>"
                f"<td>{count}</td><td>{_fmt_seconds(compute)}</td>"
                f"<td>{_fmt_seconds(comm)}</td>"
                f"<td>{_fmt_bytes(nbytes)}</td><td>{msgs}</td></tr>"
            )
        parts.append("</table>")
        if data["straggler_counts"]:
            pairs = ", ".join(
                f"worker {esc(w)}: {c}"
                for w, c in data["straggler_counts"].items()
            )
            parts.append(f"<p>Stage barriers bounded by: {pairs}</p>")

    if data["channels"]:
        parts.append("<h2>Bandwidth waterfall (top channels)</h2>")
        biggest = max(ch["wire_bytes"] for ch in data["channels"])
        parts.append(
            "<table><tr><th>channel</th><th>wire</th><th>metered</th>"
            "<th>frames</th><th>retries</th><th>degraded</th>"
            "<th>eff. bits/elem</th></tr>"
        )
        for ch in data["channels"]:
            degraded = (
                ch["degraded_predicted"] + ch["degraded_cached"]
                + ch["degraded_zero"]
            )
            parts.append(
                f"<tr><td>{esc(ch['channel'])}</td>"
                f"<td>{_bar(ch['wire_bytes'], biggest, 'bar comm')}"
                f"{_fmt_bytes(ch['wire_bytes'])}</td>"
                f"<td>{_fmt_bytes(ch['metered_bytes'])}</td>"
                f"<td>{ch['frames']}</td><td>{ch['retries']}</td>"
                f"<td>{degraded}</td>"
                f"<td>{ch['effective_bits']:.2f}</td></tr>"
            )
        parts.append("</table>")

    health = data["health"]
    if health is not None:
        parts.append("<h2>Compression frontier</h2><ul>")
        fractions = health.get("candidate_fractions", {})
        if fractions:
            inner = ", ".join(
                f"{esc(name)}: {frac * 100:.1f}%"
                for name, frac in sorted(fractions.items())
            )
            parts.append(f"<li>ReqEC-FP candidate wins &mdash; {inner}</li>")
        bits_current = health.get("bits_current", {})
        if bits_current:
            inner = ", ".join(
                f"{esc(pair)}: {bits}b"
                for pair, bits in sorted(bits_current.items())
            )
            parts.append(f"<li>Bit-Tuner current widths &mdash; {inner}</li>")
        parts.append(
            f"<li>Bit-Tuner width changes: "
            f"{len(health.get('bits_events', []))}</li>"
        )
        violations = health.get("violations", [])
        if violations:
            parts.append("<li class='warn'>Theorem-1 violations:<ul>")
            for violation in violations:
                parts.append(f"<li>{esc(violation)}</li>")
            parts.append("</ul></li>")
        else:
            parts.append(
                "<li class='ok'>Theorem-1 residual checks: "
                "all within bound</li>"
            )
        parts.append("</ul>")

    if data["faults"]:
        parts.append("<h2>Faults and recovery</h2><ul>")
        for name, value in sorted(data["faults"].items()):
            if isinstance(value, dict):
                inner = ", ".join(
                    f"{esc(k)}: {v:.0f}" for k, v in value.items()
                )
                parts.append(f"<li>{esc(name)}: {inner}</li>")
            else:
                parts.append(f"<li>{esc(name)}: {value:.0f}</li>")
        parts.append("</ul>")

    if data.get("membership_events"):
        parts.append("<h2>Membership timeline</h2>")
        parts.append(
            "<table><tr><th>epoch</th><th>event</th><th>details</th></tr>"
        )
        for event in data["membership_events"]:
            details = ", ".join(
                f"{k}={v}" for k, v in sorted(event.items())
                if k not in ("kind", "epoch")
            )
            parts.append(
                f"<tr><td>{event['epoch']}</td>"
                f"<td>{esc(event['kind'])}</td>"
                f"<td>{esc(details)}</td></tr>"
            )
        parts.append("</table>")

    parts.append(
        "<script type='application/json' id='report-data'>"
        + json.dumps(data, sort_keys=True)
        + "</script>"
    )
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_report(run, path: str | Path, fmt: str = "html") -> Path:
    """Build and write one report artifact; returns the resolved path."""
    if fmt not in ("html", "markdown"):
        raise ValueError(f"fmt must be 'html' or 'markdown', got {fmt!r}")
    data = build_report(run)
    text = render_html(data) if fmt == "html" else render_markdown(data)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path
