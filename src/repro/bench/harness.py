"""Timing, report I/O and baseline comparison for the bench suites.

Reports are plain JSON (``BENCH_core.json`` at the repo root):

* ``kernels`` — per micro-kernel ``ns_per_element`` (best-of-repeats),
  plus the reference kernel's time and the resulting speedup where a
  reference exists;
* ``exchange`` / ``epoch`` — measured wall seconds for the macro suites.

:func:`compare_reports` gates CI: every kernel present in both the
current report and the baseline must be no more than ``max_regress``
slower (ratio on ``ns_per_element``). Macro timings are reported but
not gated — they wander too much across machines to be a useful tripwire.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Callable

__all__ = [
    "SCHEMA",
    "best_seconds",
    "parse_percent",
    "write_report",
    "load_report",
    "compare_reports",
    "stage_breakdown_lines",
    "speedup_flag_lines",
]

SCHEMA = "ecgraph-bench/1"


def best_seconds(
    fn: Callable[[], object], repeats: int = 5, inner: int = 1
) -> float:
    """Best wall time of ``fn`` over ``repeats`` runs of ``inner`` calls.

    Best-of (not mean) is the standard micro-benchmark estimator: every
    slowdown source — scheduler preemption, cache eviction, GC — is
    additive noise, so the minimum is the closest observable to the
    kernel's true cost.
    """
    if repeats < 1 or inner < 1:
        raise ValueError("repeats and inner must be >= 1")
    fn()  # warm-up: first call pays allocator / code-path setup costs
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def parse_percent(text: str) -> float:
    """``"15%"`` or ``"15"`` -> 0.15; used by ``--max-regress``."""
    cleaned = text.strip()
    if cleaned.endswith("%"):
        cleaned = cleaned[:-1]
    try:
        value = float(cleaned)
    except ValueError:
        raise ValueError(f"cannot parse percentage {text!r}") from None
    if value < 0:
        raise ValueError(f"percentage must be non-negative, got {text!r}")
    return value / 100.0


def write_report(report: dict, path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: str | pathlib.Path) -> dict:
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(f"bench report {path} does not exist")
    report = json.loads(path.read_text())
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"{path} is not a bench report (schema "
            f"{report.get('schema')!r}, expected {SCHEMA!r})"
        )
    return report


def compare_reports(
    current: dict, baseline: dict, max_regress: float
) -> list[str]:
    """Kernel-level regressions of ``current`` against ``baseline``.

    Returns one human-readable line per kernel whose ``ns_per_element``
    grew by more than ``max_regress`` (a fraction: 0.15 = 15%). Kernels
    present on only one side are skipped — suites may grow between
    baselines, and a stale baseline shouldn't fail on new kernels.
    """
    regressions = []
    base_kernels = baseline.get("kernels", {})
    for name, stats in sorted(current.get("kernels", {}).items()):
        base = base_kernels.get(name)
        if base is None:
            continue
        cur_ns = stats.get("ns_per_element")
        base_ns = base.get("ns_per_element")
        if not cur_ns or not base_ns:
            continue
        ratio = cur_ns / base_ns - 1.0
        if ratio > max_regress:
            regressions.append(
                f"{name}: {cur_ns:.2f} ns/element vs baseline "
                f"{base_ns:.2f} (+{ratio:.0%}, limit {max_regress:.0%})"
            )
    return regressions


def speedup_flag_lines(report: dict) -> list[str]:
    """Within-report sanity flags: every ``speedup_*`` below 1.0.

    A ``speedup_*`` entry is a suite's claim that its "optimized"
    configuration beats its own baseline; below 1.0 the claim is false
    on the machine that produced the report, and silently rendering it
    as a speedup row is how the GIL-bound ``exchange_threads`` path
    masqueraded as a fast path. Informational (no exit-code change):
    e.g. a single-CPU host legitimately measures
    ``speedup_multiprocess`` < 1.0.
    """
    flags = []
    for suite, data in sorted(report.items()):
        if not isinstance(data, dict):
            continue
        for key, value in sorted(data.items()):
            if not key.startswith("speedup"):
                continue
            if isinstance(value, (int, float)) and value < 1.0:
                flags.append(
                    f"{suite}.{key} = {value:.2f}x — this 'optimized' "
                    "configuration is SLOWER than its own baseline"
                )
    return flags


def stage_breakdown_lines(current: dict, baseline: dict) -> list[str]:
    """Per-stage epoch-time deltas of ``current`` against ``baseline``.

    Purely informational (stage walls are macro timings and are not
    gated): one line per engine stage present in both reports, sorted by
    absolute delta so the stage that moved the epoch leads. Baselines
    written before the stage profile existed produce no lines.
    """
    cur_stages = current.get("epoch", {}).get("stages") or {}
    base_stages = baseline.get("epoch", {}).get("stages") or {}
    deltas = []
    for stage in cur_stages:
        base_s = base_stages.get(stage)
        cur_s = cur_stages[stage]
        if base_s is None or not base_s or not cur_s:
            continue
        deltas.append((cur_s - base_s, stage, cur_s, base_s))
    deltas.sort(key=lambda item: -abs(item[0]))
    return [
        f"{stage}: {cur_s * 1e3:.2f}ms vs baseline {base_s * 1e3:.2f}ms "
        f"({(cur_s / base_s - 1.0):+.0%})"
        for delta, stage, cur_s, base_s in deltas
    ]
