"""Per-channel traffic ledger: unit hooks and meter reconciliation.

The ledger's contract is byte-exact agreement with the
:class:`~repro.cluster.network.TrafficMeter`: summing ``metered_bytes``
over one direction's channels must equal the meter's category total for
that direction, because both sides record the same charges (including
retransmissions, excluding intra-machine traffic). The golden configs
from ``test_engine_equivalence.py`` are re-run here with telemetry
enabled to check that contract across every trainer variant.
"""

import json

import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.gat import GATTrainer
from repro.core.messages import ChannelKey
from repro.core.sage import SAGETrainer
from repro.core.sampling_trainer import SampledECGraphTrainer
from repro.core.trainer import ECGraphTrainer
from repro.faults import FaultConfig
from repro.graph.generators import GraphSpec, generate_graph
from repro.obs import (
    NULL_LEDGER,
    ChannelLedger,
    NullChannelLedger,
    ObsConfig,
    direction_of_category,
)

KEY = ChannelKey(layer=1, responder=0, requester=2)


class TestLedgerHooks:
    def test_metered_vs_local_split(self):
        ledger = ChannelLedger()
        ledger.record_frame(KEY, "fp_embeddings", 100, metered=True)
        ledger.record_frame(KEY, "fp_embeddings", 40, metered=False)
        ((key, record),) = ledger.snapshot().channels
        assert key == (0, 2, 1, "fp")
        assert record.metered_bytes == 100
        assert record.local_bytes == 40
        assert record.wire_bytes == 140
        assert record.frames == 2
        assert record.retries == 0

    def test_retries_accumulate_bytes(self):
        ledger = ChannelLedger()
        ledger.record_frame(KEY, "bp_gradients", 64, metered=True)
        ledger.record_frame(KEY, "bp_gradients", 64, metered=True, retry=True)
        ledger.record_frame(KEY, "bp_gradients", 64, metered=True, retry=True)
        ((_, record),) = ledger.snapshot().channels
        assert record.frames == 3
        assert record.retries == 2
        assert record.retry_bytes == 128
        # Retransmissions consume bandwidth, so they count as metered.
        assert record.metered_bytes == 192

    def test_effective_bits(self):
        ledger = ChannelLedger()
        ledger.record_frame(KEY, "fp_embeddings", 100, metered=True)
        ledger.record_rows(KEY, "fp_embeddings", rows=10, elements=160)
        ((_, record),) = ledger.snapshot().channels
        assert record.rows == 10
        assert record.elements == 160
        assert record.effective_bits == pytest.approx(8.0 * 100 / 160)

    def test_effective_bits_without_elements_is_zero(self):
        ledger = ChannelLedger()
        ledger.record_frame(KEY, "fp_embeddings", 100, metered=True)
        ((_, record),) = ledger.snapshot().channels
        assert record.effective_bits == 0.0

    def test_degradation_kinds(self):
        ledger = ChannelLedger()
        ledger.record_degraded(KEY, "fp_embeddings", "predicted")
        ledger.record_degraded(KEY, "fp_embeddings", "cached")
        ledger.record_degraded(KEY, "fp_embeddings", "zero")
        ledger.record_degraded(KEY, "fp_embeddings", "zero")
        ((_, record),) = ledger.snapshot().channels
        assert record.degraded_predicted == 1
        assert record.degraded_cached == 1
        assert record.degraded_zero == 2
        assert record.degraded == 4

    def test_direction_of_category(self):
        assert direction_of_category("fp_embeddings") == "fp"
        assert direction_of_category("bp_gradients") == "bp"
        assert direction_of_category("eval") == "eval"

    def test_direction_bytes_split_by_direction(self):
        ledger = ChannelLedger()
        ledger.record_frame(KEY, "fp_embeddings", 100, metered=True)
        ledger.record_frame(KEY, "bp_gradients", 30, metered=True)
        ledger.record_frame(KEY, "fp_embeddings", 7, metered=False)
        assert ledger.direction_bytes("fp") == 100  # metered only
        assert ledger.direction_bytes("bp") == 30
        assert ledger.direction_bytes("eval") == 0


class TestSnapshot:
    def _populated(self) -> ChannelLedger:
        ledger = ChannelLedger()
        for layer in (2, 1):
            for responder, requester in ((1, 0), (0, 1)):
                key = ChannelKey(layer, responder, requester)
                ledger.record_frame(
                    key, "fp_embeddings", 10 * (layer + responder + 1),
                    metered=True,
                )
        return ledger

    def test_channels_sorted_by_key(self):
        snap = self._populated().snapshot()
        keys = [key for key, _ in snap.channels]
        assert keys == sorted(keys)
        assert keys[0] == (0, 1, 1, "fp")

    def test_snapshot_is_a_frozen_copy(self):
        ledger = self._populated()
        snap = ledger.snapshot()
        before = snap.direction_bytes("fp")
        ledger.record_frame(KEY, "fp_embeddings", 999, metered=True)
        assert snap.direction_bytes("fp") == before

    def test_top_channels_ranked_by_wire_bytes(self):
        snap = self._populated().snapshot()
        ranked = snap.top_channels(2)
        assert len(ranked) == 2
        assert ranked[0][1].wire_bytes >= ranked[1][1].wire_bytes

    def test_direction_totals(self):
        snap = self._populated().snapshot()
        totals = snap.direction_totals()
        assert totals["fp"]["channels"] == 4
        assert totals["fp"]["metered_bytes"] == snap.direction_bytes("fp")

    def test_as_dict_keys_and_determinism(self):
        snap = self._populated().snapshot()
        data = json.loads(json.dumps(snap.as_dict()))
        assert "0->1/L1/fp" in data["channels"]
        assert data == self._populated().snapshot().as_dict()

    def test_reset(self):
        ledger = self._populated()
        ledger.reset()
        assert ledger.snapshot().channels == ()


class TestNullLedger:
    def test_every_hook_is_a_noop(self):
        ledger = NullChannelLedger()
        assert not ledger.enabled
        ledger.record_frame(KEY, "fp_embeddings", 100, metered=True)
        ledger.record_rows(KEY, "fp_embeddings", 10, 160)
        ledger.record_degraded(KEY, "fp_embeddings", "zero")
        ledger.reset()
        assert ledger.direction_bytes("fp") == 0
        assert ledger.snapshot().channels == ()

    def test_shared_singleton(self):
        assert isinstance(NULL_LEDGER, NullChannelLedger)


# ----------------------------------------------------------------------
# Reconciliation against the TrafficMeter, across the golden configs.
# ----------------------------------------------------------------------

EPOCHS = 6
SPEC = ClusterSpec(num_workers=3, num_servers=1)
MODEL = dict(num_layers=2, hidden_dim=16)
# Ledger only (no tracing/health/profile) keeps the sweep fast.
OBS = ObsConfig(enabled=True, trace=False, health=False, profile=False,
                epoch_snapshots=False)


@pytest.fixture(scope="module")
def golden_graph():
    return generate_graph(GraphSpec(
        name="golden", num_vertices=96, avg_degree=6.0, feature_dim=12,
        num_classes=3, homophily=0.9, feature_noise=0.8,
        train=40, val=16, test=32, seed=7,
    ))


def _build_instrumented(name: str, graph):
    """The golden configs of test_engine_equivalence, telemetry on."""
    base = ECGraphConfig(seed=0, obs=OBS)
    if name == "ecgraph_default":
        return ECGraphTrainer(graph, ModelConfig(**MODEL), SPEC, base)
    if name == "raw":
        return ECGraphTrainer(
            graph, ModelConfig(**MODEL), SPEC, base.as_non_cp()
        )
    if name == "compress":
        return ECGraphTrainer(
            graph, ModelConfig(**MODEL), SPEC, base.as_cp_only()
        )
    if name == "delayed":
        return ECGraphTrainer(
            graph, ModelConfig(**MODEL), SPEC,
            ECGraphConfig(seed=0, obs=OBS, fp_mode="delayed",
                          bp_mode="delayed"),
        )
    if name == "sage":
        return SAGETrainer(
            graph, ModelConfig(model="sage", **MODEL), SPEC, base
        )
    if name == "gat":
        return GATTrainer(
            graph, ModelConfig(**MODEL), SPEC,
            ECGraphConfig(seed=0, obs=OBS, fp_mode="compress"), num_heads=2,
        )
    if name == "sampled_offline":
        return SampledECGraphTrainer(
            graph, ModelConfig(**MODEL), SPEC, fanouts=[4, 4],
            config=ECGraphConfig(seed=0, obs=OBS, fp_mode="compress",
                                 bp_mode="resec"),
        )
    if name == "sampled_online":
        return SampledECGraphTrainer(
            graph, ModelConfig(**MODEL), SPEC, fanouts=[4, 4],
            config=ECGraphConfig(seed=0, obs=OBS, fp_mode="compress",
                                 bp_mode="resec"),
            online=True,
        )
    raise AssertionError(name)


GOLDEN_CONFIGS = (
    "ecgraph_default", "raw", "compress", "delayed",
    "sage", "gat", "sampled_offline", "sampled_online",
)


class TestMeterReconciliation:
    @pytest.mark.parametrize("name", GOLDEN_CONFIGS)
    def test_ledger_reconciles_byte_exact(self, name, golden_graph):
        trainer = _build_instrumented(name, golden_graph)
        for t in range(EPOCHS):
            trainer.run_epoch(t)
        categories = trainer.runtime.meter.category_totals()
        ledger = trainer.obs.ledger
        assert ledger.direction_bytes("fp") == categories["fp_embeddings"]
        assert ledger.direction_bytes("bp") == categories["bp_gradients"]

    def test_compressed_channels_report_sub_float_bits(self, golden_graph):
        trainer = _build_instrumented("compress", golden_graph)
        for t in range(EPOCHS):
            trainer.run_epoch(t)
        snap = trainer.obs.ledger.snapshot()
        fp = [r for (_, _, _, d), r in snap.channels if d == "fp"]
        assert fp
        for record in fp:
            assert 0.0 < record.effective_bits < 32.0

    def test_faulty_run_still_reconciles(self, small_graph):
        # Drops force retransmissions; both the meter and the ledger
        # charge every attempt, so the books must still balance.
        config = ECGraphConfig(
            seed=1, obs=OBS,
            faults=FaultConfig(enabled=True, seed=5, drop_prob=0.2,
                               max_retries=2),
        )
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=4, workers_per_machine=2), config,
        )
        trainer.train(3)
        categories = trainer.runtime.meter.category_totals()
        ledger = trainer.obs.ledger
        assert ledger.direction_bytes("fp") == categories["fp_embeddings"]
        assert ledger.direction_bytes("bp") == categories["bp_gradients"]
        totals = ledger.snapshot().direction_totals()
        retries = sum(agg["retries"] for agg in totals.values())
        assert retries == trainer.fault_counters.retries
        assert retries > 0

    def test_degradations_match_fault_counters(self, small_graph):
        config = ECGraphConfig(
            seed=1, obs=OBS,
            faults=FaultConfig(enabled=True, seed=9, drop_prob=0.35,
                               max_retries=0),
        )
        trainer = ECGraphTrainer(
            small_graph, ModelConfig(num_layers=2, hidden_dim=8),
            ClusterSpec(num_workers=4, workers_per_machine=2), config,
        )
        trainer.train(3)
        counters = trainer.fault_counters
        snap = trainer.obs.ledger.snapshot()
        degraded = sum(r.degraded for _, r in snap.channels)
        assert degraded == counters.degraded
        assert degraded > 0
