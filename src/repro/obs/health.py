"""Compression-health monitors.

Three signals tell you whether EC-Graph's compression machinery is
behaving the way the paper argues it should:

* **ReqEC-FP candidate wins** — per iteration, which fraction of
  selections went to the compressed / predicted / average candidate.
  A persistently high *predicted* fraction means the quantizer is too
  lossy (the Bit-Tuner should be raising ``B``);
* **Bit-Tuner trajectory** — every width change per (responder,
  requester) pair, so adaptive-bits behaviour is auditable;
* **ResEC-BP residuals** — per layer, the maximum observed
  ``||delta_t||^2`` against the Theorem 1 bound evaluated with an
  empirically estimated contraction factor ``alpha`` and the largest
  observed gradient norm as ``G``. Violations are flagged, not raised:
  a bound breach is a *finding*, and aborting training would destroy the
  evidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["ResidualCheck", "HealthReport", "CompressionHealthMonitor"]

_CANDIDATES = ("compressed", "predicted", "average")


@dataclass(frozen=True)
class ResidualCheck:
    """Theorem-1 verdict for one (layer, bits) combination."""

    layer: int
    bits: int
    alpha: float
    max_residual_sq: float
    max_gradient_sq: float
    bound: float | None  # None when alpha is outside the theorem's range
    violated: bool

    def as_dict(self) -> dict:
        return {
            "layer": self.layer,
            "bits": self.bits,
            "alpha": self.alpha,
            "max_residual_sq": self.max_residual_sq,
            "max_gradient_sq": self.max_gradient_sq,
            "bound": self.bound,
            "violated": self.violated,
        }


@dataclass(frozen=True)
class HealthReport:
    """Everything the monitors observed over one run."""

    candidate_fractions: dict[str, float]
    win_trajectory: list[tuple[int, float]]  # (iteration, predicted frac)
    bits_current: dict[tuple[int, int], int]
    bits_events: list[tuple[tuple[int, int], int]]
    residual_checks: list[ResidualCheck]
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {
            "candidate_fractions": dict(self.candidate_fractions),
            "win_trajectory": [list(p) for p in self.win_trajectory],
            "bits_current": {
                f"{a}->{b}": bits for (a, b), bits in self.bits_current.items()
            },
            "bits_events": [
                {"pair": f"{a}->{b}", "bits": bits}
                for (a, b), bits in self.bits_events
            ],
            "residual_checks": [c.as_dict() for c in self.residual_checks],
            "violations": list(self.violations),
            "ok": self.ok,
        }


class CompressionHealthMonitor:
    """Samples compression-quality signals during training.

    The trainer wires this monitor into :class:`~repro.core.reqec_fp.
    ReqECPolicy`, :class:`~repro.core.resec_bp.ResECPolicy` and the
    :class:`~repro.core.bit_tuner.BitTuner`; each hook is a cheap
    accumulate, and all analysis happens once in :meth:`report`.
    """

    def __init__(self, rho: float = 1.5):
        if rho <= 1.0:
            raise ValueError("rho must be > 1")
        self.rho = rho
        self._num_layers: int | None = None
        # ReqEC-FP selection counts: cumulative and per iteration.
        self._selection_totals = [0, 0, 0]
        self._per_iteration: dict[int, list[int]] = {}
        # Bit-Tuner.
        self._bits_current: dict[tuple[int, int], int] = {}
        self._bits_events: list[tuple[tuple[int, int], int]] = []
        # ResEC-BP residuals, keyed by (layer, bits).
        self._residual_sq: dict[tuple[int, int], float] = {}
        self._gradient_sq: dict[tuple[int, int], float] = {}
        self._alpha_cache: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Hooks (hot path — keep them to accumulations)
    # ------------------------------------------------------------------
    def set_model(self, num_layers: int) -> None:
        """Tell the monitor the model depth ``L`` (for the bound)."""
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self._num_layers = num_layers

    def record_selection(
        self, pair: tuple[int, int], counts, bits: int, t: int
    ) -> None:
        """One ReqEC-FP selector outcome: ``counts`` is a length-3
        (compressed, predicted, average) tally for one channel."""
        del pair, bits
        totals = self._selection_totals
        per_t = self._per_iteration.get(t)
        if per_t is None:
            per_t = self._per_iteration[t] = [0, 0, 0]
        for i in range(3):
            c = int(counts[i])
            totals[i] += c
            per_t[i] += c

    def record_bits(self, pair: tuple[int, int], bits: int) -> None:
        """Bit-Tuner observer: a pair's width changed to ``bits``."""
        self._bits_current[pair] = bits
        self._bits_events.append((pair, bits))

    def record_residual(
        self, layer: int, residual_norm: float, gradient_norm: float,
        bits: int,
    ) -> None:
        """One ResEC-BP respond: the new residual and true-gradient norms."""
        key = (layer, bits)
        r_sq = residual_norm * residual_norm
        g_sq = gradient_norm * gradient_norm
        if r_sq > self._residual_sq.get(key, 0.0):
            self._residual_sq[key] = r_sq
        if g_sq > self._gradient_sq.get(key, 0.0):
            self._gradient_sq[key] = g_sq

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def _alpha(self, bits: int) -> float:
        """Empirical contraction factor of the ``bits``-wide quantizer."""
        alpha = self._alpha_cache.get(bits)
        if alpha is None:
            from repro.analysis.theory import estimate_alpha
            from repro.compression.quantization import BucketQuantizer

            alpha = estimate_alpha(BucketQuantizer(bits))
            self._alpha_cache[bits] = alpha
        return alpha

    def report(self) -> HealthReport:
        """Aggregate every observation into one :class:`HealthReport`."""
        from repro.analysis.theory import theorem1_bound

        total = sum(self._selection_totals)
        fractions = {
            name: (self._selection_totals[i] / total if total else 0.0)
            for i, name in enumerate(_CANDIDATES)
        }
        trajectory = []
        for t in sorted(self._per_iteration):
            counts = self._per_iteration[t]
            n = sum(counts)
            trajectory.append((t, counts[1] / n if n else 0.0))

        checks: list[ResidualCheck] = []
        violations: list[str] = []
        num_layers = self._num_layers
        for (layer, bits), max_r_sq in sorted(self._residual_sq.items()):
            max_g_sq = self._gradient_sq.get((layer, bits), 0.0)
            alpha = self._alpha(bits)
            bound = None
            violated = False
            layer_ok = (
                num_layers is not None and 1 <= layer <= num_layers
            )
            if layer_ok and 0 < alpha < 1.0 / math.sqrt(1.0 + self.rho):
                bound = theorem1_bound(
                    alpha, math.sqrt(max_g_sq), num_layers, layer,
                    rho=self.rho,
                )
                violated = max_r_sq > bound
            checks.append(ResidualCheck(
                layer=layer, bits=bits, alpha=alpha,
                max_residual_sq=max_r_sq, max_gradient_sq=max_g_sq,
                bound=bound, violated=violated,
            ))
            if violated:
                violations.append(
                    f"layer {layer} ({bits}-bit): max ||delta||^2 "
                    f"{max_r_sq:.4g} exceeds Theorem 1 bound {bound:.4g}"
                )
        return HealthReport(
            candidate_fractions=fractions,
            win_trajectory=trajectory,
            bits_current=dict(self._bits_current),
            bits_events=list(self._bits_events),
            residual_checks=checks,
            violations=violations,
        )

    def reset(self) -> None:
        """Drop every observation (between independent runs)."""
        self._selection_totals = [0, 0, 0]
        self._per_iteration.clear()
        self._bits_current.clear()
        self._bits_events.clear()
        self._residual_sq.clear()
        self._gradient_sq.clear()
