"""Analysis utilities: the Table II cost model, the Theorem 1 error bound,
convergence summaries and ASCII reporting for the benchmarks.
"""

from repro.analysis.convergence import (
    ConvergenceSummary,
    compare_speedups,
    convergence_target,
    summarize,
)
from repro.analysis.export import export_csv, export_json, load_json, run_to_records
from repro.analysis.costs import (
    CostEstimate,
    CostParameters,
    ecgraph_costs,
    ml_centered_costs,
)
from repro.analysis.reporting import format_series, format_speedup, format_table
from repro.analysis.traffic import dominant_category, traffic_by_category, traffic_table
from repro.analysis.theory import (
    ErrorFeedbackTrace,
    estimate_alpha,
    simulate_error_feedback,
    theorem1_bound,
)

__all__ = [
    "ConvergenceSummary",
    "compare_speedups",
    "convergence_target",
    "summarize",
    "export_csv",
    "export_json",
    "load_json",
    "run_to_records",
    "CostEstimate",
    "CostParameters",
    "ecgraph_costs",
    "ml_centered_costs",
    "dominant_category",
    "traffic_by_category",
    "traffic_table",
    "format_series",
    "format_speedup",
    "format_table",
    "ErrorFeedbackTrace",
    "estimate_alpha",
    "simulate_error_feedback",
    "theorem1_bound",
]
