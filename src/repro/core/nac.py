"""The 1-hop Neighbor Access Controller (paper Fig. 2a).

The NAC mediates every halo exchange: local neighbours come out of shared
memory for free, remote neighbours go through an exchange policy, the
traffic meter and the compute clocks. Since the simulator runs workers
sequentially, responder and requester codec time is measured directly and
charged to the right worker, scaled by the configured codec speedup
(emulating the original C++ compression kernels; see DESIGN.md).

Two optional hot-path optimizations (both off by default, see
``docs/performance.md``):

* **buffer pooling** — halo (and reverse-accumulator) matrices are
  reused across exchanges, keyed by ``(kind, worker, dim)`` and zeroed
  in place, instead of being reallocated per layer per iteration
  (DGL-style zero-copy halo buffers). Pooled buffers are only valid
  until the next exchange call; every caller consumes them immediately.
* **thread-pool fan-out** — the independent (responder, requester)
  channels encode and decode concurrently (numpy releases the GIL in
  its kernels). Results are merged and charged to the TrafficMeter /
  ClusterRuntime in the same fixed channel order as the sequential
  loop, from per-channel measured times, so accounting structure and
  halo contents are identical to the sequential path. The fan-out
  engages only on the fault-free, telemetry-off path; otherwise the
  NAC silently falls back to the sequential loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cluster.engine import ClusterRuntime
from repro.core.messages import ChannelKey, ChannelMessage, ExchangePolicy
from repro.core.worker import WorkerState
from repro.faults.injector import FATE_CORRUPT, FATE_DELAY, FATE_DROP

__all__ = ["NeighborAccessController"]


@dataclass
class _Channel:
    """One (responder, requester) exchange planned for this round."""

    key: ChannelKey
    owner: int
    requester: int
    slots: np.ndarray
    served: np.ndarray
    rows_idx: np.ndarray | None


class NeighborAccessController:
    """Runs one halo exchange across all worker pairs.

    When a :class:`~repro.faults.FaultInjector` is attached (see
    :attr:`injector`), every delivery can drop, corrupt or stall; the
    NAC retransmits with exponential backoff — retry bytes hit the
    traffic meter and backoff stalls the requester, so the modelled
    epoch time reflects the faults — and when retries are exhausted it
    *degrades* instead of aborting: the requester substitutes the
    ReqEC-FP predicted candidate, its last successfully received rows
    for the channel, or zeros (partial aggregation), in that order.

    Args:
        buffer_pool: Reuse halo buffers across exchanges (zeroed in
            place) instead of allocating fresh ones every call.
        threads: Fan the independent channels of one exchange out over
            this many threads; ``0``/``1`` keeps the sequential loop.
    """

    def __init__(
        self,
        runtime: ClusterRuntime,
        workers: list[WorkerState],
        codec_speedup: float = 20.0,
        buffer_pool: bool = False,
        threads: int = 0,
    ):
        if codec_speedup <= 0:
            raise ValueError("codec_speedup must be positive")
        if threads < 0:
            raise ValueError("threads must be non-negative")
        self.runtime = runtime
        self.workers = workers
        self.codec_speedup = codec_speedup
        self.buffer_pool = buffer_pool
        self.threads = threads
        self.telemetry = runtime.telemetry
        # FaultInjector, attached by the trainer when faults are
        # enabled; None keeps the exchange loop on the fault-free path.
        self.injector = None
        self._last_proportions: dict[tuple[int, int], float] = {}
        # Last successfully received rows per channel, the stale-halo
        # fallback of last resort. Populated only under fault injection.
        self._halo_cache: dict[ChannelKey, np.ndarray] = {}
        # (kind, worker, dim) -> pooled float32 buffer.
        self._buffers: dict[tuple[str, int, int], np.ndarray] = {}
        self._executor = None

    # ------------------------------------------------------------------
    # Buffer pool
    # ------------------------------------------------------------------
    def _buffer(self, kind: str, worker: int, rows: int, dim: int) -> np.ndarray:
        """A zeroed ``(rows, dim)`` float32 buffer, pooled when enabled."""
        if not self.buffer_pool:
            return np.zeros((rows, dim), dtype=np.float32)
        key = (kind, worker, dim)
        buf = self._buffers.get(key)
        if buf is None or buf.shape[0] != rows:
            buf = np.zeros((rows, dim), dtype=np.float32)
            self._buffers[key] = buf
        else:
            buf.fill(0.0)
        return buf

    # ------------------------------------------------------------------
    # Thread pool
    # ------------------------------------------------------------------
    def _pool(self):
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=self.threads, thread_name_prefix="nac"
            )
        return self._executor

    def close(self) -> None:
        """Shut the fan-out thread pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _fan_out_ok(self, channels: list[_Channel]) -> bool:
        """Threaded fan-out needs the fault-free, uninstrumented path:
        fault fates consume a shared RNG stream in channel order and
        span tracing timestamps interleave across threads."""
        return (
            self.threads > 1
            and len(channels) > 1
            and self.injector is None
            and not self.telemetry.enabled
        )

    # ------------------------------------------------------------------
    def exchange(
        self,
        layer: int,
        t: int,
        rows_of: Callable[[WorkerState], np.ndarray],
        policy: ExchangePolicy,
        category: str,
        dim: int,
        subset: dict[tuple[int, int], np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Fetch remote rows for every worker; returns halo matrices.

        Args:
            layer: Layer id baked into the channel keys.
            t: Iteration number (policies schedule on it).
            rows_of: Maps a *responding* worker's state to the local
                matrix whose rows are being served (e.g. its ``H^{l-1}``).
            policy: The exchange policy for this direction.
            category: Traffic category for the meter.
            dim: Row width, used to size the halo buffers.
            subset: Optional per-(responder, requester) indices into the
                channel's full vertex list (sampling mode); channels not
                present exchange all rows.

        Returns:
            One ``(num_halo, dim)`` array per worker, rows scattered into
            the worker's halo ordering. Vertices outside a subset keep 0.
            With the buffer pool enabled the arrays are only valid until
            the next exchange.
        """
        halos = [
            self._buffer("halo", state.worker_id, state.num_halo, dim)
            for state in self.workers
        ]
        self._last_proportions.clear()
        obs = self.telemetry
        with obs.span("halo_exchange", layer=layer, category=category):
            channels = self._plan(layer, rows_of, subset)
            if self._fan_out_ok(channels):
                self._exchange_threaded(channels, halos, t, policy, category)
            else:
                self._exchange_sequential(
                    channels, halos, t, policy, category, dim
                )
        return halos

    def _plan(
        self,
        layer: int,
        rows_of: Callable[[WorkerState], np.ndarray],
        subset: dict[tuple[int, int], np.ndarray] | None,
    ) -> list[_Channel]:
        """Materialize this round's channels in the canonical order.

        The order — requesters ascending, then each requester's owners in
        halo-slot insertion order — is what the sequential loop always
        used; the threaded path merges its charges in exactly this order
        so accounting is execution-schedule independent.
        """
        channels: list[_Channel] = []
        for requester in self.workers:
            i = requester.worker_id
            for owner, slots in requester.halo_slots.items():
                rows_idx = None
                if subset is not None:
                    rows_idx = subset.get((owner, i))
                    if rows_idx is not None and rows_idx.size == 0:
                        continue
                responder = self.workers[owner]
                serve_rows = responder.serves[i]
                source = rows_of(responder)
                if rows_idx is None:
                    served = source[serve_rows]
                else:
                    served = source[serve_rows[rows_idx]]
                channels.append(_Channel(
                    key=ChannelKey(layer=layer, responder=owner, requester=i),
                    owner=owner,
                    requester=i,
                    slots=slots,
                    served=served,
                    rows_idx=rows_idx,
                ))
        return channels

    def _exchange_sequential(
        self,
        channels: list[_Channel],
        halos: list[np.ndarray],
        t: int,
        policy: ExchangePolicy,
        category: str,
        dim: int,
    ) -> None:
        obs = self.telemetry
        for ch in channels:
            owner, i = ch.owner, ch.requester
            with obs.span("encode", responder=owner, requester=i):
                start = time.perf_counter()
                message = policy.respond(
                    ch.key, ch.served, t, rows_idx=ch.rows_idx
                )
                respond_wall = time.perf_counter() - start
            self._charge_compute(owner, respond_wall, message.codec_seconds)

            delivered = self._deliver(ch.key, message, owner, i, category)
            if obs.enabled:
                obs.metrics.inc(
                    "halo_rows", ch.served.shape[0], category=category
                )
                obs.metrics.observe(
                    "message_bytes", message.nbytes, category=category
                )

            if not delivered:
                self._notify_failure(
                    policy, ch.key, message, rows_idx=ch.rows_idx
                )
                rows = self._degraded_rows(
                    policy, ch.key, t, ch.served.shape[0], dim
                )
                if rows is None:
                    continue  # zeros: partial aggregation
                if ch.rows_idx is None:
                    halos[i][ch.slots] = rows
                else:
                    halos[i][ch.slots[ch.rows_idx]] = rows
                continue

            with obs.span("decode", responder=owner, requester=i):
                start = time.perf_counter()
                result = policy.receive(
                    ch.key, message, t, rows_idx=ch.rows_idx
                )
                receive_wall = time.perf_counter() - start
            self._charge_compute(i, receive_wall, result.codec_seconds)

            if ch.rows_idx is None:
                halos[i][ch.slots] = result.rows
                if self.injector is not None:
                    self._halo_cache[ch.key] = np.array(
                        result.rows, copy=True
                    )
            else:
                halos[i][ch.slots[ch.rows_idx]] = result.rows

            self._record_proportion(ch, message, result)

    def _exchange_threaded(
        self,
        channels: list[_Channel],
        halos: list[np.ndarray],
        t: int,
        policy: ExchangePolicy,
        category: str,
    ) -> None:
        """Encode/decode all channels concurrently, charge in order.

        Channel computations are independent and deterministic given
        (key, rows, t) and the policy's per-channel state, so the halo
        contents are bit-identical to the sequential loop no matter how
        the scheduler interleaves them. Only the *charging* order could
        differ — so all meter/compute charges happen after each barrier,
        in the canonical channel order, from per-channel measured times.
        """
        pool = self._pool()

        def _respond(ch: _Channel) -> tuple[ChannelMessage, float]:
            start = time.perf_counter()
            message = policy.respond(ch.key, ch.served, t, rows_idx=ch.rows_idx)
            return message, time.perf_counter() - start

        responded = list(pool.map(_respond, channels))
        for ch, (message, wall) in zip(channels, responded):
            self._charge_compute(ch.owner, wall, message.codec_seconds)
            self.runtime.send_worker_to_worker(
                ch.owner, ch.requester, message.nbytes, category
            )

        def _receive(item: tuple[_Channel, tuple[ChannelMessage, float]]):
            ch, (message, _) = item
            start = time.perf_counter()
            result = policy.receive(ch.key, message, t, rows_idx=ch.rows_idx)
            return result, time.perf_counter() - start

        received = list(pool.map(_receive, zip(channels, responded)))
        for ch, (message, _), (result, wall) in zip(
            channels, responded, received
        ):
            self._charge_compute(ch.requester, wall, result.codec_seconds)
            if ch.rows_idx is None:
                halos[ch.requester][ch.slots] = result.rows
            else:
                halos[ch.requester][ch.slots[ch.rows_idx]] = result.rows
            self._record_proportion(ch, message, result)

    def _record_proportion(self, ch, message, result) -> None:
        proportion = result.meta.get("proportion")
        if proportion is None:
            proportion = message.meta.get("proportion")
        if proportion is not None:
            self._last_proportions[(ch.owner, ch.requester)] = float(proportion)

    def reverse_exchange(
        self,
        layer: int,
        t: int,
        halo_rows_of: Callable[[WorkerState], np.ndarray],
        policy: ExchangePolicy,
        category: str,
        dim: int,
    ) -> list[np.ndarray]:
        """Push halo-partial gradients back to their owners and sum them.

        The mirror of :meth:`exchange`, needed by models with asymmetric
        aggregation (GAT): each worker computed *partial* gradients for
        the remote vertices it consumed; the owners must receive and sum
        those partials. The paper describes this as fetching "embedding
        gradients from out-neighbors" in the backward pass.

        Args:
            halo_rows_of: Maps a worker's state to its ``(num_halo, dim)``
                partial-gradient matrix (halo ordering).

        Returns:
            One ``(num_local, dim)`` array per worker: the sum of the
            partials every consumer computed for that worker's vertices.
            With the buffer pool enabled the arrays are only valid until
            the next exchange.
        """
        accumulated = [
            self._buffer("local", state.worker_id, state.num_local, dim)
            for state in self.workers
        ]
        obs = self.telemetry
        with obs.span("halo_exchange", layer=layer, category=category,
                      direction="reverse"):
            for consumer in self.workers:
                i = consumer.worker_id
                partials = halo_rows_of(consumer)
                for owner, slots in consumer.halo_slots.items():
                    responder_rows = partials[slots]
                    owner_state = self.workers[owner]
                    local_rows = owner_state.serves[i]
                    # Channel direction: consumer responds, owner requests.
                    key = ChannelKey(layer=layer, responder=i, requester=owner)

                    with obs.span("encode", responder=i, requester=owner):
                        start = time.perf_counter()
                        message = policy.respond(key, responder_rows, t)
                        respond_wall = time.perf_counter() - start
                    self._charge_compute(i, respond_wall, message.codec_seconds)

                    delivered = self._deliver(key, message, i, owner, category)
                    if obs.enabled:
                        obs.metrics.inc(
                            "halo_rows", responder_rows.shape[0],
                            category=category,
                        )
                        obs.metrics.observe(
                            "message_bytes", message.nbytes, category=category
                        )

                    if not delivered:
                        # Lost partial gradients contribute zero this
                        # iteration; error-feedback policies fold them
                        # into the channel residual for the next one.
                        self._notify_failure(policy, key, message)
                        self.injector.counters.degraded_zero += 1
                        if obs.enabled:
                            obs.metrics.inc(
                                "fault_degraded", kind="zero",
                                category=category,
                            )
                        continue

                    with obs.span("decode", responder=i, requester=owner):
                        start = time.perf_counter()
                        result = policy.receive(key, message, t)
                        receive_wall = time.perf_counter() - start
                    self._charge_compute(
                        owner, receive_wall, result.codec_seconds
                    )

                    np.add.at(accumulated[owner], local_rows, result.rows)
        return accumulated

    def last_proportions(self) -> dict[tuple[int, int], float]:
        """Predicted-selection proportions observed in the last exchange.

        Keyed by (responder, requester); feeds the Bit-Tuner once per
        iteration, after the final forward layer (Algorithm 3).
        """
        return dict(self._last_proportions)

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------
    def _deliver(
        self,
        key: ChannelKey,
        message: ChannelMessage,
        src: int,
        dst: int,
        category: str,
    ) -> bool:
        """Attempt delivery with retransmission; returns success.

        Every attempt — including failed ones, whose bytes were on the
        wire before the loss — is charged to the traffic meter. Each
        failed attempt stalls the receiving worker for the network's
        loss-detection timeout (the RTO a reliable RPC layer waits
        before declaring the message dead), retransmissions add the
        retry policy's exponential backoff on top, and late deliveries
        stall for the configured delay.
        """
        self.runtime.send_worker_to_worker(src, dst, message.nbytes, category)
        injector = self.injector
        if injector is None:
            return True
        obs = self.telemetry
        timeout = self.runtime.spec.network.loss_detection_seconds(
            message.nbytes
        )
        fate = injector.message_fate(key.layer, src, dst, category, 0)
        attempt = 0
        while fate in (FATE_DROP, FATE_CORRUPT):
            if obs.enabled:
                obs.metrics.inc(
                    "fault_message_failures", category=category, fate=fate
                )
            self.runtime.add_stall(dst, timeout)
            attempt += 1
            if attempt > injector.config.max_retries:
                return False
            injector.counters.retries += 1
            injector.counters.retry_bytes += message.nbytes
            self.runtime.add_stall(dst, injector.backoff_seconds(attempt))
            self.runtime.send_worker_to_worker(
                src, dst, message.nbytes, category
            )
            if obs.enabled:
                obs.metrics.inc("fault_retries", category=category)
            fate = injector.message_fate(key.layer, src, dst, category, attempt)
        if fate == FATE_DELAY:
            self.runtime.add_stall(dst, injector.config.delay_seconds)
            if obs.enabled:
                obs.metrics.inc("fault_delays", category=category)
        return True

    def _notify_failure(
        self,
        policy: ExchangePolicy,
        key: ChannelKey,
        message: ChannelMessage,
        rows_idx: np.ndarray | None = None,
    ) -> None:
        """Tell a stateful policy its message never arrived.

        ReqEC-FP rolls back an unacknowledged trend snapshot so both
        ends stay in sync; ResEC-BP folds the lost gradient into the
        channel residual so error feedback re-ships it next iteration
        (the handler returns True when it compensated that way).
        """
        handler = getattr(policy, "on_delivery_failure", None)
        if handler is not None and handler(key, message, rows_idx=rows_idx):
            self.injector.counters.residual_compensations += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.inc("fault_residual_compensations")

    def _degraded_rows(
        self,
        policy: ExchangePolicy,
        key: ChannelKey,
        t: int,
        num_rows: int,
        dim: int,
    ) -> np.ndarray | None:
        """Stale-halo substitute for an undeliverable forward message.

        Preference order: the ReqEC-FP *predicted* candidate (requester
        trend state needs no payload at all), then the channel's last
        successfully received rows, then None (the halo slots keep
        their zeros — DistGNN-style partial aggregation).
        """
        counters = self.injector.counters
        obs = self.telemetry
        fallback = getattr(policy, "fallback_rows", None)
        if fallback is not None:
            rows = fallback(key, t)
            if rows is not None and rows.shape == (num_rows, dim):
                counters.degraded_predicted += 1
                if obs.enabled:
                    obs.metrics.inc("fault_degraded", kind="predicted")
                return rows
        cached = self._halo_cache.get(key)
        if cached is not None and cached.shape == (num_rows, dim):
            counters.degraded_cached += 1
            if obs.enabled:
                obs.metrics.inc("fault_degraded", kind="cached")
            return cached
        counters.degraded_zero += 1
        if obs.enabled:
            obs.metrics.inc("fault_degraded", kind="zero")
        return None

    def invalidate_worker(self, worker: int) -> None:
        """Drop cached halo rows touching ``worker`` (crash recovery)."""
        stale = [
            key for key in self._halo_cache
            if worker in (key.responder, key.requester)
        ]
        for key in stale:
            del self._halo_cache[key]

    # ------------------------------------------------------------------
    def _charge_compute(
        self, worker: int, wall_seconds: float, codec_seconds: float
    ) -> None:
        """Charge policy time, discounting codec work by the speedup."""
        codec_seconds = min(codec_seconds, wall_seconds)
        other = wall_seconds - codec_seconds
        self.runtime.add_compute(
            worker, other + codec_seconds / self.codec_speedup
        )
