"""Fig. 11 — scalability with the number of machines, Hash vs METIS.

Sweeps the cluster size for EC-Graph and EC-Graph-S under both
partitioning strategies and prints epoch time per configuration plus
edge-cut statistics.

Expected shape (paper section V-E): epoch time falls as machines are
added (compute shrinks faster than communication grows); METIS runs
faster than Hash thanks to its lower edge cut, but costs far more
partitioning time — the reason the paper defaults to Hash.
"""

from __future__ import annotations

from _helpers import HIDDEN, bench_graph, dataset_header, run_once

from repro.analysis.reporting import format_table
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.sampling_trainer import SampledECGraphTrainer
from repro.core.trainer import ECGraphTrainer
from repro.partition import make_partitioner, partition_stats

DATASET = "reddit"
MACHINES = (2, 4, 6, 8)
EPOCHS = 4
# The paper's machines are 4-core Xeons working on graphs ~100x larger
# than our stand-ins, so their epochs are compute-dominated. Slowing the
# simulated machines relative to this host restores that regime (see
# DESIGN.md section 2); communication still differentiates Hash vs METIS.
COMPUTE_SPEED = 0.1


def _experiment():
    graph = bench_graph(DATASET)
    results = {}
    cut_ratios = {}
    partition_seconds = {}
    for method in ("hash", "metis"):
        for machines in MACHINES:
            partitioner = make_partitioner(method, seed=0)
            partition = partitioner.partition(graph.adjacency, machines)
            stats = partition_stats(graph.adjacency, partition)
            cut_ratios[(method, machines)] = stats.edge_cut_ratio
            partition_seconds[(method, machines)] = partition.seconds

            trainer = ECGraphTrainer(
                graph, ModelConfig(num_layers=2, hidden_dim=HIDDEN[DATASET]),
                ClusterSpec(num_workers=machines, compute_speed=COMPUTE_SPEED),
                ECGraphConfig(), partition=partition,
            )
            run = trainer.train(EPOCHS, name=f"ecgraph/{method}/{machines}")
            results[("ecgraph", method, machines)] = run.avg_epoch_seconds()
            results[("ecgraph-compute", method, machines)] = (
                sum(e.breakdown.compute_seconds for e in run.epochs)
                / run.num_epochs
            )
            results[("ecgraph-comm", method, machines)] = (
                sum(e.breakdown.comm_seconds for e in run.epochs)
                / run.num_epochs
            )

            sampled = SampledECGraphTrainer(
                graph, ModelConfig(num_layers=2, hidden_dim=HIDDEN[DATASET]),
                ClusterSpec(num_workers=machines, compute_speed=COMPUTE_SPEED),
                fanouts=[10, 5],
                config=ECGraphConfig(fp_mode="compress", bp_mode="resec"),
                partition=partition,
            )
            run_s = sampled.train(EPOCHS, name=f"ecgraph_s/{method}/{machines}")
            results[("ecgraph_s", method, machines)] = run_s.avg_epoch_seconds()
    return results, cut_ratios, partition_seconds


def test_fig11_scalability(benchmark):
    results, cut_ratios, partition_seconds = run_once(benchmark, _experiment)
    print()
    print(dataset_header(DATASET))
    headers = ["system/partitioner"] + [f"{m} machines" for m in MACHINES]
    rows = []
    for system in ("ecgraph", "ecgraph_s"):
        for method in ("hash", "metis"):
            rows.append(
                [f"{system}+{method}"]
                + [f"{results[(system, method, m)]:.4f}" for m in MACHINES]
            )
    print(format_table(headers, rows,
                       title="Fig. 11: epoch time (s) vs cluster size"))
    cut_rows = [
        [method]
        + [f"{cut_ratios[(method, m)]:.3f}" for m in MACHINES]
        + [f"{partition_seconds[(method, MACHINES[-1])]:.3f}s"]
        for method in ("hash", "metis")
    ]
    print(format_table(
        ["partitioner"] + [f"cut@{m}" for m in MACHINES] + ["partition time"],
        cut_rows,
    ))

    # Shape assertions:
    # 1. METIS cuts fewer edges than Hash at every cluster size.
    for machines in MACHINES:
        assert cut_ratios[("metis", machines)] < cut_ratios[("hash", machines)]
    # 2. METIS moves fewer bytes, so its communication time (a
    #    deterministic function of the exact wire bytes) beats Hash at
    #    the largest cluster; the epoch total is only loosely bounded
    #    because measured compute carries single-host timing noise.
    assert results[("ecgraph-comm", "metis", 8)] < (
        results[("ecgraph-comm", "hash", 8)]
    )
    assert results[("ecgraph", "metis", 8)] <= (
        1.5 * results[("ecgraph", "hash", 8)]
    )
    # 3. METIS partitioning costs much more than Hash (why the paper
    #    defaults to Hash on big graphs).
    assert partition_seconds[("metis", 8)] > 10 * partition_seconds[("hash", 8)]
    # 4. Scaling: adding machines shrinks the bottleneck worker's
    #    compute (the parallelism behind the paper's Fig. 11 downward
    #    slope). The compute component is asserted rather than the epoch
    #    total because single-host timing noise on the communication-
    #    latency side can mask the trend at these scaled-down sizes.
    assert results[("ecgraph-compute", "hash", 8)] < (
        0.9 * results[("ecgraph-compute", "hash", 2)]
    )
