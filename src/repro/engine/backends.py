"""Model backends: the per-architecture math behind one plumbing path.

The staged engine (:mod:`repro.engine.stages`) owns everything the
paper's Algorithms 1–2 share between architectures — parameter pulls,
halo exchanges, the loss/metric scan, gradient pushes, Bit-Tuner
feedback — and delegates the per-layer math to a
:class:`ModelBackend`. GCN, GraphSAGE, GAT and the sampled GCN variant
therefore differ only in the backend object they plug in, instead of
each subclass re-implementing the forward/backward plumbing.

A backend is bound to one :class:`~repro.engine.context.ExchangeContext`
for its lifetime (``bind`` registers any extra parameters and builds
auxiliary structures) and then answers the stage's questions:

* ``layer_param_names`` — which server parameters a layer pulls;
* ``layer_input`` / ``layer_output`` — local embedding rows feeding and
  produced by a layer (the exchange serves ``layer_output`` rows);
* ``forward_layer`` — one local layer kernel (runs inside the worker's
  compute clock; stores whatever cache the backward pass needs);
* ``final_logits`` — the classification outputs after the last layer;
* ``backward_layer`` — one layer of the backward pass, including any
  gradient halo exchange it needs (GCN/SAGE fetch gradient halos
  forward-style; GAT pushes partial gradients through the reverse
  exchange);
* ``eval_layer`` — the exact-communication inference kernel
  (full adjacency, raw exchange) used by Table-V style evaluation.

Backends with sampling or per-iteration state additionally implement
``on_epoch_start`` (resampling) and ``exchange_subset`` (per-channel
sampled row subsets).
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

import numpy as np
from scipy.sparse import csr_matrix

from repro.core.gcn_math import (
    bias_gradient,
    layer_backward_inputs,
    layer_forward,
    weight_gradient,
)
from repro.core.models import bias_name, weight_name
from repro.core.worker import WorkerState
from repro.engine.context import ExchangeContext
from repro.nn.init import glorot_uniform
from repro.obs.tracing import monotonic_now

__all__ = [
    "ModelBackend",
    "GCNBackend",
    "SampledGCNBackend",
    "SAGEBackend",
    "GATBackend",
    "self_weight_name",
    "attn_src_name",
    "attn_dst_name",
    "head_weight_name",
]


@runtime_checkable
class ModelBackend(Protocol):
    """What the staged engine needs from a model architecture."""

    name: str

    def bind(self, ctx: ExchangeContext) -> None:
        """Attach the context; register extra parameters, build caches."""

    def on_epoch_start(self, t: int) -> None:
        """Per-iteration hook before the forward pass (sampling)."""

    def on_membership_change(self) -> None:
        """Rebuild per-worker structures after an elastic reassignment."""

    def begin_iteration(self) -> None:
        """Reset per-iteration caches before a forward pass."""

    def adjacency(self, state: WorkerState, layer: int) -> csr_matrix:
        """Aggregation rows used by ``state`` at ``layer`` (1-based)."""

    def exchange_subset(
        self, layer: int, direction: str
    ) -> dict[tuple[int, int], np.ndarray] | None:
        """Per-channel sampled row subsets (None = exchange all rows)."""

    def layer_param_names(self, layer: int) -> list[str]:
        """Server parameter names pulled for ``layer`` (1-based)."""

    def layer_input(self, state: WorkerState, layer: int) -> np.ndarray:
        """Local rows feeding ``layer`` (features or H^{layer-1})."""

    def layer_output(self, state: WorkerState, layer: int) -> np.ndarray:
        """Local output rows of ``layer`` (what halo exchanges serve)."""

    def forward_layer(
        self,
        state: WorkerState,
        h_cat: np.ndarray,
        pulled: dict[str, np.ndarray],
        layer: int,
        is_last: bool,
    ) -> None:
        """One local layer kernel; caches whatever backward needs."""

    def final_logits(self, state: WorkerState) -> np.ndarray:
        """Classification logits for the worker's local vertices."""

    def backward_layer(
        self, t: int, layer: int, grads: dict[int, dict[str, np.ndarray]]
    ) -> None:
        """One backward layer: parameter-gradient shares into ``grads``
        plus the input-gradient propagation (with its halo exchange)."""

    def backward_local(
        self, state: WorkerState, layer: int, weights: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """One worker's parameter-gradient shares (pure kernel)."""

    def backward_reduce(
        self,
        state: WorkerState,
        layer: int,
        halo: np.ndarray,
        weights: dict[str, np.ndarray],
    ) -> None:
        """Fold the layer's gradient halo into ``grad_rows[layer-1]``."""

    def bp_halo_rows(self, state: WorkerState, layer: int) -> np.ndarray:
        """Rows the worker contributes to the layer's gradient exchange."""

    def kernel_refresh(self, worker_id: int) -> Any:
        """Payload syncing a worker replica's kernel state (None = none)."""

    def apply_kernel_refresh(self, worker_id: int, payload: Any) -> None:
        """Apply a :meth:`kernel_refresh` payload in a worker replica."""

    def eval_layer(
        self,
        state: WorkerState,
        h_cat: np.ndarray,
        params: dict[str, np.ndarray],
        layer: int,
        is_last: bool,
    ) -> np.ndarray:
        """Exact-inference layer output (full adjacency, no caching)."""


class _BackendBase:
    """Default hooks shared by the concrete backends.

    The backward pass is split so the execution backend (inline or
    multi-process, see :mod:`repro.engine.executor`) can run the pure
    per-worker kernels wherever the workers live while the exchange
    itself stays on the supervisor:

    * :meth:`backward_local` — one worker's parameter-gradient shares
      for a layer (pure kernel, no clocks, no exchanges);
    * :meth:`backward_reduce` — one worker folds the layer's gradient
      halo into ``grad_rows[layer - 1]`` (pure kernel);
    * :meth:`_backward_halos` — the layer's gradient halo exchange
      (forward-style fetch by default; GAT overrides with the reverse
      push);
    * :meth:`backward_layer` — the generic driver tying them together
      through the context's executor.

    ``_bp_span_stages`` keeps the historical ``weight_grad`` /
    ``input_grad`` kernel spans for the backends that emitted them
    (GCN and its sampled variant).
    """

    ctx: ExchangeContext
    _bp_span_stages: bool = False
    # Bumped whenever supervisor-side per-worker kernel state changes
    # (sampled adjacencies); the process executor ships a refresh to
    # worker replicas when the shipped version falls behind.
    kernel_version: int = 0

    def bind(self, ctx: ExchangeContext) -> None:
        self.ctx = ctx

    def on_epoch_start(self, t: int) -> None:
        del t

    def on_membership_change(self) -> None:
        """Rebuild architecture-specific per-worker structures after the
        reassigner swapped the worker states (default: nothing cached)."""

    def adjacency(self, state: WorkerState, layer: int) -> csr_matrix:
        del layer
        return state.a_local

    def exchange_subset(
        self, layer: int, direction: str
    ) -> dict[tuple[int, int], np.ndarray] | None:
        del layer, direction
        return None

    # ------------------------------------------------------------------
    # Kernel-state shipping (multi-process executor)
    # ------------------------------------------------------------------
    def kernel_refresh(self, worker_id: int) -> Any:
        """Payload bringing a worker replica's kernel state up to
        ``kernel_version`` (None = backend has no mutable kernel state)."""
        del worker_id
        return None

    def apply_kernel_refresh(self, worker_id: int, payload: Any) -> None:
        """Apply a :meth:`kernel_refresh` payload in a worker replica."""
        del worker_id, payload

    # ------------------------------------------------------------------
    # Backward pass: generic driver + per-backend kernels
    # ------------------------------------------------------------------
    def backward_param_names(self, layer: int) -> list[str]:
        """Server parameters the layer's backward kernels read."""
        raise NotImplementedError

    def backward_local(
        self, state: WorkerState, layer: int, weights: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """One worker's parameter-gradient shares for ``layer``."""
        raise NotImplementedError

    def backward_reduce(
        self,
        state: WorkerState,
        layer: int,
        halo: np.ndarray,
        weights: dict[str, np.ndarray],
    ) -> None:
        """Fold the layer's gradient halo into ``grad_rows[layer-1]``."""
        raise NotImplementedError

    def bp_halo_rows(self, state: WorkerState, layer: int) -> np.ndarray:
        """Rows this worker contributes to the layer's gradient exchange."""
        return state.grad_rows[layer]

    def bp_halo_export_dim(self, layer: int) -> int | None:
        """Row width of extra halo rows :meth:`backward_local` produces
        for the layer's exchange (GAT's dH partials); None = the
        exchange reads ``grad_rows`` written by earlier steps."""
        del layer
        return None

    def _backward_halos(self, t: int, layer: int) -> list[np.ndarray]:
        """The layer's gradient halo exchange (forward-style fetch)."""
        ctx = self.ctx
        return ctx.exchange(
            "bp",
            layer,
            t,
            rows_of=lambda s, _l=layer: ctx.executor.grad_rows(s, _l),
            dim=ctx.params.dims[layer],
            subset=self.exchange_subset(layer, "bp"),
        )

    def backward_layer(
        self, t: int, layer: int, grads: dict[int, dict[str, np.ndarray]]
    ) -> None:
        ctx = self.ctx
        weights = {
            name: ctx.servers.get(name)
            for name in self.backward_param_names(layer)
        }
        ctx.executor.backward_local(t, layer, weights, grads)
        if layer > 1:
            halos = self._backward_halos(t, layer)
            ctx.executor.backward_reduce(t, layer, weights, halos)


# ----------------------------------------------------------------------
# GCN
# ----------------------------------------------------------------------
class GCNBackend(_BackendBase):
    """Full-batch GCN (paper Algorithms 1–2); caches live in the
    :class:`~repro.core.worker.WorkerState` layer caches."""

    name = "gcn"

    def begin_iteration(self) -> None:
        num_layers = self.ctx.params.num_layers
        for state in self.ctx.workers:
            state.reset_iteration(num_layers)

    def layer_param_names(self, layer: int) -> list[str]:
        return self.ctx.params.layer_param_names(layer - 1)

    def layer_input(self, state: WorkerState, layer: int) -> np.ndarray:
        return state.features if layer == 1 else state.local_output(layer - 1)

    def layer_output(self, state: WorkerState, layer: int) -> np.ndarray:
        return state.local_output(layer)

    def forward_layer(
        self,
        state: WorkerState,
        h_cat: np.ndarray,
        pulled: dict[str, np.ndarray],
        layer: int,
        is_last: bool,
    ) -> None:
        ctx = self.ctx
        state.caches[layer] = layer_forward(
            self.adjacency(state, layer),
            h_cat,
            pulled[weight_name(layer - 1)],
            pulled.get(bias_name(layer - 1)),
            ctx.params.activation,
            is_last=is_last,
            transform_first=(None if ctx.config.transform_first else False),
        )

    def final_logits(self, state: WorkerState) -> np.ndarray:
        return state.caches[self.ctx.params.num_layers].output

    _bp_span_stages: bool = True

    def backward_param_names(self, layer: int) -> list[str]:
        names = [weight_name(layer - 1)]
        if self.ctx.params.use_bias:
            names.append(bias_name(layer - 1))
        return names

    def backward_local(
        self, state: WorkerState, layer: int, weights: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        del weights
        g_local = state.grad_rows[layer]
        cache = state.caches[layer]
        shares = {
            weight_name(layer - 1): weight_gradient(
                cache, self.adjacency(state, layer), g_local
            )
        }
        if self.ctx.params.use_bias:
            shares[bias_name(layer - 1)] = bias_gradient(g_local)
        return shares

    def backward_reduce(
        self,
        state: WorkerState,
        layer: int,
        halo: np.ndarray,
        weights: dict[str, np.ndarray],
    ) -> None:
        g_cat = np.concatenate([state.grad_rows[layer], halo], axis=0)
        state.grad_rows[layer - 1] = layer_backward_inputs(
            self.adjacency(state, layer),
            g_cat,
            weights[weight_name(layer - 1)],
            state.caches[layer - 1].pre_activation,
            self.ctx.params.activation,
        )

    def eval_layer(
        self,
        state: WorkerState,
        h_cat: np.ndarray,
        params: dict[str, np.ndarray],
        layer: int,
        is_last: bool,
    ) -> np.ndarray:
        # Exact inference always aggregates over the full local
        # adjacency (not a sampled one) with default kernel ordering.
        return layer_forward(
            state.a_local,
            h_cat,
            params[weight_name(layer - 1)],
            params.get(bias_name(layer - 1)),
            self.ctx.params.activation,
            is_last=is_last,
        ).output


# ----------------------------------------------------------------------
# Sampled GCN (EC-Graph-S / DistDGL baseline)
# ----------------------------------------------------------------------
class SampledGCNBackend(GCNBackend):
    """GCN over per-layer fanout-sampled adjacencies.

    Offline mode samples once (the trainer folds the cost into
    preprocessing); online mode resamples at every ``on_epoch_start``,
    charging per-worker sampling compute and coordination messages.
    """

    name = "sampled-gcn"

    def __init__(
        self,
        fanouts: list[int],
        online: bool,
        sampling_speedup: float,
        rng: np.random.Generator,
    ) -> None:
        self.fanouts = list(fanouts)
        self.online = online
        self.sampling_speedup = sampling_speedup
        self.rng = rng
        self.sampled_adj: list[dict[int, csr_matrix]] = []
        self.subsets: dict[int, dict[tuple[int, int], np.ndarray]] = {}
        self.sampled_once = False

    def on_membership_change(self) -> None:
        # The sampled adjacencies index the old compact halo spaces;
        # force a fresh (offline-mode) resample on the next iteration.
        self.sampled_once = False
        self.sampled_adj = []
        self.subsets = {}
        self.kernel_version += 1

    def kernel_refresh(self, worker_id: int) -> dict[int, csr_matrix]:
        # Worker replicas only aggregate: they need their own sampled
        # adjacency, not the exchange subsets (supervisor-side).
        return self.sampled_adj[worker_id]

    def apply_kernel_refresh(self, worker_id: int, payload: Any) -> None:
        while len(self.sampled_adj) <= worker_id:
            self.sampled_adj.append({})
        self.sampled_adj[worker_id] = payload

    def adjacency(self, state: WorkerState, layer: int) -> csr_matrix:
        return self.sampled_adj[state.worker_id][layer]

    def exchange_subset(
        self, layer: int, direction: str
    ) -> dict[tuple[int, int], np.ndarray] | None:
        del direction  # forward and backward touch the same sampled halo
        return self.subsets.get(layer)

    def on_epoch_start(self, t: int) -> None:
        ctx = self.ctx
        if self.online or not self.sampled_once:
            start = monotonic_now()
            with ctx.telemetry.span("sampling", mode="online", epoch=t):
                self.resample()
            elapsed = (monotonic_now() - start) / self.sampling_speedup
            self.sampled_once = True
            ctx.telemetry.metrics.inc("resamples")
            # Online sampling is coordinated by per-worker samplers; the
            # cost is per-worker compute plus request messages.
            per_worker = elapsed / max(ctx.spec.num_workers, 1)
            for state in ctx.active_workers():
                ctx.runtime.add_compute(state.worker_id, per_worker)
                for owner in state.requests:
                    ctx.runtime.send_worker_to_worker(
                        state.worker_id, owner, 64, "sampling"
                    )

    # ------------------------------------------------------------------
    def resample(self) -> None:
        """Draw a fresh per-layer sampled adjacency for every worker."""
        ctx = self.ctx
        self.kernel_version += 1
        self.sampled_adj = []
        needed_halo: dict[int, list[np.ndarray]] = {
            layer: [] for layer in range(1, ctx.params.num_layers + 1)
        }
        for state in ctx.workers:
            per_layer: dict[int, csr_matrix] = {}
            for layer in range(1, ctx.params.num_layers + 1):
                sampled, used_halo = self._sample_rows(
                    state, self.fanouts[layer - 1]
                )
                per_layer[layer] = sampled
                needed_halo[layer].append(used_halo)
            self.sampled_adj.append(per_layer)

        self.subsets = {}
        for layer, per_worker in needed_halo.items():
            layer_subsets: dict[tuple[int, int], np.ndarray] = {}
            for state, used in zip(ctx.workers, per_worker):
                # ecg: ignore[ECG003] halo_slots insertion order IS the bit-pinned channel plan order; sorting would reorder subset construction
                for owner, slots in state.halo_slots.items():
                    rows_idx = np.flatnonzero(used[slots]).astype(np.int64)
                    layer_subsets[(owner, state.worker_id)] = rows_idx
            self.subsets[layer] = layer_subsets

    def _sample_rows(
        self, state: WorkerState, fanout: int
    ) -> tuple[csr_matrix, np.ndarray]:
        """Sample one worker's adjacency rows down to ``fanout`` entries.

        Returns the sampled matrix and a boolean mask over the worker's
        halo (which remote rows the sampled matrix references).
        """
        sub = state.sub
        indptr = sub.indptr
        indices = sub.indices
        weights = (
            sub.weights
            if sub.weights is not None
            else np.ones(sub.num_edges, dtype=np.float32)
        )
        out_indices: list[np.ndarray] = []
        out_weights: list[np.ndarray] = []
        out_counts = np.zeros(sub.num_local, dtype=np.int64)
        for row in range(sub.num_local):
            lo, hi = indptr[row], indptr[row + 1]
            degree = hi - lo
            if degree <= fanout:
                out_indices.append(indices[lo:hi])
                out_weights.append(weights[lo:hi])
                out_counts[row] = degree
            else:
                pick = self.rng.choice(degree, size=fanout, replace=False)
                scale = degree / fanout  # unbiased row-sum estimator
                out_indices.append(indices[lo + pick])
                out_weights.append(weights[lo + pick] * scale)
                out_counts[row] = fanout
        new_indptr = np.zeros(sub.num_local + 1, dtype=np.int64)
        np.cumsum(out_counts, out=new_indptr[1:])
        new_indices = (
            np.concatenate(out_indices)
            if out_indices
            else np.empty(0, dtype=np.int64)
        )
        new_weights = (
            np.concatenate(out_weights)
            if out_weights
            else np.empty(0, dtype=np.float32)
        )
        sampled = csr_matrix(
            (new_weights.astype(np.float32), new_indices, new_indptr),
            shape=(sub.num_local, sub.num_local + sub.num_remote),
        )
        used_halo = np.zeros(sub.num_remote, dtype=bool)
        remote_cols = new_indices[new_indices >= sub.num_local] - sub.num_local
        used_halo[remote_cols] = True
        return sampled, used_halo


# ----------------------------------------------------------------------
# GraphSAGE (mean aggregator, concatenation variant)
# ----------------------------------------------------------------------
def self_weight_name(layer: int) -> str:
    """Parameter key of a layer's self-transform ``W_self``."""
    return f"Ws{layer}"


class _SAGECache:
    """Forward state per layer: inputs, neighbour means, pre-activations."""

    def __init__(
        self,
        h_local: np.ndarray,
        aggregated: np.ndarray,
        z: np.ndarray,
        output: np.ndarray,
    ) -> None:
        self.h_local = h_local
        self.aggregated = aggregated
        self.z = z
        self.output = output


class SAGEBackend(_BackendBase):
    """GraphSAGE-mean: ``Z = H W_self + (A_row H_cat) W_neigh + b``.

    ``weight_name(l)`` holds ``W_neigh`` and :func:`self_weight_name`
    holds ``W_self``. The mean aggregation matrix is row-normalized and
    therefore not symmetric, but its sparsity structure is (undirected
    graphs), so the backward pass aggregates fetched gradient halos
    locally through the transposed-weight rows built at bind time.
    """

    name = "sage"

    def bind(self, ctx: ExchangeContext) -> None:
        super().bind(ctx)
        rng = np.random.default_rng(ctx.config.seed + 13)
        for layer in range(ctx.params.num_layers):
            d_in, d_out = ctx.params.dims[layer], ctx.params.dims[layer + 1]
            ctx.servers.register(
                self_weight_name(layer), glorot_uniform((d_in, d_out), rng)
            )
        self._build_transposed_rows()
        self.caches: list[list[_SAGECache | None]] = []

    def on_membership_change(self) -> None:
        self._build_transposed_rows()

    def _build_transposed_rows(self) -> None:
        """Rows of ``A_row^T`` per worker: entry (j, i) = 1/(deg(i)+1).

        The structure equals each worker's local adjacency (symmetric
        graph); only the weights change — they follow the *column*
        vertex's degree instead of the row's.
        """
        ctx = self.ctx
        degrees = np.diff(ctx.graph.adjacency.indptr).astype(np.float64)
        self.a_transposed: list[csr_matrix] = []
        for state in ctx.workers:
            sub = state.sub
            compact_to_global = np.concatenate(
                [sub.local_vertices, sub.remote_vertices]
            )
            col_global = compact_to_global[sub.indices]
            weights = (1.0 / (degrees[col_global] + 1.0)).astype(np.float32)
            self.a_transposed.append(
                csr_matrix(
                    (weights, sub.indices, sub.indptr),
                    shape=state.a_local.shape,
                )
            )

    def begin_iteration(self) -> None:
        num_layers = self.ctx.params.num_layers
        self.caches = [[None] * (num_layers + 1) for _ in self.ctx.workers]
        for state in self.ctx.workers:
            state.reset_iteration(num_layers)

    def layer_param_names(self, layer: int) -> list[str]:
        names = [weight_name(layer - 1), self_weight_name(layer - 1)]
        if self.ctx.params.use_bias:
            names.append(bias_name(layer - 1))
        return names

    def layer_input(self, state: WorkerState, layer: int) -> np.ndarray:
        if layer == 1:
            return state.features
        return self.caches[state.worker_id][layer - 1].output

    def layer_output(self, state: WorkerState, layer: int) -> np.ndarray:
        return self.caches[state.worker_id][layer].output

    def sage_layer_forward(
        self,
        state: WorkerState,
        h_cat: np.ndarray,
        w_self: np.ndarray,
        w_neigh: np.ndarray,
        bias: np.ndarray | None,
        is_last: bool,
    ) -> _SAGECache:
        h_local = h_cat[:state.num_local]
        aggregated = state.a_local @ h_cat
        z = (h_local @ w_self + aggregated @ w_neigh).astype(np.float32)
        if bias is not None:
            z = z + bias
        output = (
            z if is_last
            else self.ctx.params.activation(z).astype(np.float32)
        )
        return _SAGECache(h_local, aggregated, z, output)

    def forward_layer(
        self,
        state: WorkerState,
        h_cat: np.ndarray,
        pulled: dict[str, np.ndarray],
        layer: int,
        is_last: bool,
    ) -> None:
        self.caches[state.worker_id][layer] = self.sage_layer_forward(
            state,
            h_cat,
            pulled[self_weight_name(layer - 1)],
            pulled[weight_name(layer - 1)],
            pulled.get(bias_name(layer - 1)),
            is_last=is_last,
        )

    def final_logits(self, state: WorkerState) -> np.ndarray:
        return self.caches[state.worker_id][self.ctx.params.num_layers].output

    def backward_param_names(self, layer: int) -> list[str]:
        names = [self_weight_name(layer - 1), weight_name(layer - 1)]
        if self.ctx.params.use_bias:
            names.append(bias_name(layer - 1))
        return names

    def backward_local(
        self, state: WorkerState, layer: int, weights: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        del weights
        i = state.worker_id
        cache = self.caches[i][layer]
        g = state.grad_rows[layer]
        shares = {
            self_weight_name(layer - 1): (
                cache.h_local.T @ g
            ).astype(np.float32),
            weight_name(layer - 1): (
                cache.aggregated.T @ g
            ).astype(np.float32),
        }
        if self.ctx.params.use_bias:
            shares[bias_name(layer - 1)] = g.sum(axis=0).astype(np.float32)
        return shares

    def backward_reduce(
        self,
        state: WorkerState,
        layer: int,
        halo: np.ndarray,
        weights: dict[str, np.ndarray],
    ) -> None:
        i = state.worker_id
        cache_prev = self.caches[i][layer - 1]
        g = state.grad_rows[layer]
        g_cat = np.concatenate([g, halo], axis=0)
        # Self path + transposed mean aggregation path.
        dh = g @ weights[self_weight_name(layer - 1)].T + (
            self.a_transposed[i] @ g_cat
        ) @ weights[weight_name(layer - 1)].T
        state.grad_rows[layer - 1] = (
            dh * self.ctx.params.activation.derivative(cache_prev.z)
        ).astype(np.float32)

    def eval_layer(
        self,
        state: WorkerState,
        h_cat: np.ndarray,
        params: dict[str, np.ndarray],
        layer: int,
        is_last: bool,
    ) -> np.ndarray:
        return self.sage_layer_forward(
            state,
            h_cat,
            params[self_weight_name(layer - 1)],
            params[weight_name(layer - 1)],
            params.get(bias_name(layer - 1)),
            is_last=is_last,
        ).output


# ----------------------------------------------------------------------
# GAT (multi-head, head-averaging)
# ----------------------------------------------------------------------
_LEAKY_SLOPE = 0.2


def attn_src_name(layer: int, head: int = 0) -> str:
    """Parameter key of a head's source attention vector ``a_src``."""
    return f"asrc{layer}" if head == 0 else f"asrc{layer}h{head}"


def attn_dst_name(layer: int, head: int = 0) -> str:
    """Parameter key of a head's target attention vector ``a_dst``."""
    return f"adst{layer}" if head == 0 else f"adst{layer}h{head}"


def head_weight_name(layer: int, head: int = 0) -> str:
    """Parameter key of a head's transform ``W``; head 0 reuses ``W{l}``."""
    return weight_name(layer) if head == 0 else f"W{layer}h{head}"


def _leaky(x: np.ndarray) -> np.ndarray:
    return np.where(x > 0.0, x, _LEAKY_SLOPE * x)


def _leaky_grad(x: np.ndarray) -> np.ndarray:
    return np.where(x > 0.0, 1.0, _LEAKY_SLOPE).astype(np.float32)


class _EdgeSpace:
    """Per-worker edge arrays derived from the local adjacency structure.

    Attributes:
        src: Edge source (local row id) per edge, aligned with ``col``.
        col: Edge target in the worker's compact (local + halo) space.
        num_local / num_cat: Row/column counts of the local adjacency.
    """

    def __init__(self, state: WorkerState) -> None:
        indptr = state.a_local.indptr
        self.col = state.a_local.indices.astype(np.int64)
        self.src = np.repeat(
            np.arange(state.num_local, dtype=np.int64), np.diff(indptr)
        )
        self.num_local = state.num_local
        self.num_cat = state.num_local + state.num_halo

    def segment_softmax(self, logits: np.ndarray) -> np.ndarray:
        """Softmax of edge logits within each source vertex's edge set."""
        seg_max = np.full(self.num_local, -np.inf, dtype=np.float64)
        np.maximum.at(seg_max, self.src, logits)
        shifted = np.exp(logits - seg_max[self.src])
        seg_sum = np.zeros(self.num_local, dtype=np.float64)
        np.add.at(seg_sum, self.src, shifted)
        return (shifted / seg_sum[self.src]).astype(np.float32)


class _GATCache:
    """Forward state one worker keeps per layer for the backward pass.

    ``u_cat`` / ``logits`` / ``alpha`` are lists with one entry per
    attention head.
    """

    def __init__(
        self,
        h_cat: np.ndarray,
        u_cat: list[np.ndarray],
        logits: list[np.ndarray],
        alpha: list[np.ndarray],
        z: np.ndarray,
        output: np.ndarray,
    ) -> None:
        self.h_cat = h_cat
        self.u_cat = u_cat
        self.logits = logits  # raw (pre-LeakyReLU) attention scores
        self.alpha = alpha
        self.z = z
        self.output = output


class GATBackend(_BackendBase):
    """Multi-head, head-averaging GAT (paper section III-B).

    The forward halo exchange is the ordinary embedding fetch (so
    ReqEC-FP applies unchanged); the backward pass uses the transport's
    *reverse* exchange — consumers push partial gradients of the remote
    embeddings they attended over back to the owners (so ResEC-BP
    applies to those messages). Per layer and head ``k``, with
    ``U_k = H W_k``, attention logits
    ``r_ij = LeakyReLU(a_src_k . U_k_i + a_dst_k . U_k_j)`` over edges
    ``i <- j`` (self-loops included), attention ``alpha_k = softmax_j(r)``
    and output ``Z_i = mean_k sum_j alpha_k_ij U_k_j + b``.
    """

    name = "gat"

    def __init__(self, num_heads: int = 1) -> None:
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        self.num_heads = num_heads

    def bind(self, ctx: ExchangeContext) -> None:
        super().bind(ctx)
        # Attention (and extra-head weight) parameters join the servers
        # next to each layer's W/b. Head 0 reuses the base W so a
        # one-head GAT shares the GCN parameter layout.
        rng = np.random.default_rng(ctx.config.seed + 7)
        for layer in range(ctx.params.num_layers):
            d_in, d_out = ctx.params.dims[layer], ctx.params.dims[layer + 1]
            for head in range(self.num_heads):
                if head > 0:
                    ctx.servers.register(
                        head_weight_name(layer, head),
                        glorot_uniform((d_in, d_out), rng),
                    )
                ctx.servers.register(
                    attn_src_name(layer, head),
                    glorot_uniform((d_out,), rng) * 0.5,
                )
                ctx.servers.register(
                    attn_dst_name(layer, head),
                    glorot_uniform((d_out,), rng) * 0.5,
                )
        self.edges = [_EdgeSpace(state) for state in ctx.workers]
        self.caches: list[list[_GATCache | None]] = []

    def on_membership_change(self) -> None:
        self.edges = [_EdgeSpace(state) for state in self.ctx.workers]

    def begin_iteration(self) -> None:
        num_layers = self.ctx.params.num_layers
        self.caches = [[None] * (num_layers + 1) for _ in self.ctx.workers]
        # Per-worker dH over the cat space, filled layer by layer during
        # the backward pass (the reverse exchange ships the halo slice).
        self._dh_partials: dict[int, np.ndarray] = {}
        for state in self.ctx.workers:
            state.reset_iteration(num_layers)

    def layer_param_names(self, layer: int) -> list[str]:
        names = []
        for head in range(self.num_heads):
            names.extend([
                head_weight_name(layer - 1, head),
                attn_src_name(layer - 1, head),
                attn_dst_name(layer - 1, head),
            ])
        if self.ctx.params.use_bias:
            names.append(bias_name(layer - 1))
        return names

    def _head_params(
        self, params: dict[str, np.ndarray], layer: int, head: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            params[head_weight_name(layer - 1, head)],
            params[attn_src_name(layer - 1, head)],
            params[attn_dst_name(layer - 1, head)],
        )

    def layer_input(self, state: WorkerState, layer: int) -> np.ndarray:
        if layer == 1:
            return state.features
        return self.caches[state.worker_id][layer - 1].output

    def layer_output(self, state: WorkerState, layer: int) -> np.ndarray:
        return self.caches[state.worker_id][layer].output

    def gat_layer_forward(
        self,
        worker: int,
        h_cat: np.ndarray,
        params: dict[str, np.ndarray],
        layer: int,
        is_last: bool,
    ) -> _GATCache:
        """One multi-head GAT layer on a worker's local vertices."""
        edges = self.edges[worker]
        u_heads, logit_heads, alpha_heads = [], [], []
        z = None
        for head in range(self.num_heads):
            weight, a_src, a_dst = self._head_params(params, layer, head)
            u_cat = (h_cat @ weight).astype(np.float32)
            s = u_cat[:edges.num_local] @ a_src
            d = u_cat @ a_dst
            logits = s[edges.src] + d[edges.col]
            alpha = edges.segment_softmax(_leaky(logits))
            z_head = np.zeros(
                (edges.num_local, u_cat.shape[1]), dtype=np.float32
            )
            np.add.at(z_head, edges.src, alpha[:, None] * u_cat[edges.col])
            z = z_head if z is None else z + z_head
            u_heads.append(u_cat)
            logit_heads.append(logits)
            alpha_heads.append(alpha)
        z = (z / self.num_heads).astype(np.float32)
        bias = params.get(bias_name(layer - 1))
        if bias is not None:
            z = z + bias
        output = (
            z if is_last
            else self.ctx.params.activation(z).astype(np.float32)
        )
        return _GATCache(h_cat, u_heads, logit_heads, alpha_heads, z, output)

    def forward_layer(
        self,
        state: WorkerState,
        h_cat: np.ndarray,
        pulled: dict[str, np.ndarray],
        layer: int,
        is_last: bool,
    ) -> None:
        self.caches[state.worker_id][layer] = self.gat_layer_forward(
            state.worker_id, h_cat, pulled, layer, is_last=is_last
        )

    def final_logits(self, state: WorkerState) -> np.ndarray:
        return self.caches[state.worker_id][self.ctx.params.num_layers].output

    def backward_param_names(self, layer: int) -> list[str]:
        names = []
        for head in range(self.num_heads):
            names.extend([
                head_weight_name(layer - 1, head),
                attn_src_name(layer - 1, head),
                attn_dst_name(layer - 1, head),
            ])
        return names

    def backward_local(
        self, state: WorkerState, layer: int, weights: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        # One worker's partial dH over the cat space (summed over
        # heads) plus its parameter-gradient shares.
        ctx = self.ctx
        i = state.worker_id
        edges = self.edges[i]
        cache = self.caches[i][layer]
        # Head averaging: each head sees G / num_heads.
        g = state.grad_rows[layer] / self.num_heads
        shares: dict[str, np.ndarray] = {}
        dh = np.zeros_like(cache.h_cat)
        g_src = g[edges.src]
        for head in range(self.num_heads):
            weight = weights[head_weight_name(layer - 1, head)]
            a_src = weights[attn_src_name(layer - 1, head)]
            a_dst = weights[attn_dst_name(layer - 1, head)]
            u_cat = cache.u_cat[head]
            alpha = cache.alpha[head]
            logits = cache.logits[head]
            du = np.zeros_like(u_cat)
            u_col = u_cat[edges.col]
            # Through the weighted sum Z_i = sum alpha U_j.
            np.add.at(du, edges.col, alpha[:, None] * g_src)
            # Through the attention coefficients.
            dalpha = np.einsum("ed,ed->e", g_src, u_col)
            seg_dot = np.zeros(edges.num_local, dtype=np.float64)
            np.add.at(seg_dot, edges.src, alpha * dalpha)
            de = alpha * (dalpha - seg_dot[edges.src])
            dr = (de * _leaky_grad(logits)).astype(np.float32)
            ds = np.zeros(edges.num_local, dtype=np.float32)
            np.add.at(ds, edges.src, dr)
            dd = np.zeros(edges.num_cat, dtype=np.float32)
            np.add.at(dd, edges.col, dr)
            du[:edges.num_local] += ds[:, None] * a_src[None, :]
            du += dd[:, None] * a_dst[None, :]

            shares[attn_src_name(layer - 1, head)] = (
                ds @ u_cat[:edges.num_local]
            ).astype(np.float32)
            shares[attn_dst_name(layer - 1, head)] = (
                dd @ u_cat
            ).astype(np.float32)
            shares[head_weight_name(layer - 1, head)] = (
                cache.h_cat.T @ du
            ).astype(np.float32)
            dh += du @ weight.T
        if ctx.params.use_bias:
            shares[bias_name(layer - 1)] = (
                state.grad_rows[layer].sum(axis=0)
            ).astype(np.float32)
        self._dh_partials[i] = dh
        return shares

    def bp_halo_rows(self, state: WorkerState, layer: int) -> np.ndarray:
        del layer
        return self._dh_partials[state.worker_id][state.num_local:]

    def bp_halo_export_dim(self, layer: int) -> int | None:
        # The reverse exchange ships dH halo partials (width of the
        # layer's *input*) produced by backward_local, not grad_rows.
        return self.ctx.params.dims[layer - 1] if layer > 1 else None

    def _backward_halos(self, t: int, layer: int) -> list[np.ndarray]:
        # Owners collect the halo partials of dH (the paper's
        # "embedding gradients from out-neighbors").
        ctx = self.ctx
        return ctx.reverse_exchange(
            layer,
            t,
            halo_rows_of=lambda s: ctx.executor.bp_halo_rows(s, layer),
            dim=ctx.params.dims[layer - 1],
        )

    def backward_reduce(
        self,
        state: WorkerState,
        layer: int,
        halo: np.ndarray,
        weights: dict[str, np.ndarray],
    ) -> None:
        del weights
        i = state.worker_id
        cache_prev = self.caches[i][layer - 1]
        dh_total = self._dh_partials[i][:state.num_local] + halo
        state.grad_rows[layer - 1] = (
            dh_total * self.ctx.params.activation.derivative(cache_prev.z)
        ).astype(np.float32)

    def eval_layer(
        self,
        state: WorkerState,
        h_cat: np.ndarray,
        params: dict[str, np.ndarray],
        layer: int,
        is_last: bool,
    ) -> np.ndarray:
        return self.gat_layer_forward(
            state.worker_id, h_cat, params, layer, is_last=is_last
        ).output
