"""Quickstart: train a GCN with EC-Graph on a simulated 6-machine cluster.

Runs the full paper pipeline — ReqEC-FP with the adaptive Bit-Tuner in
the forward direction, ResEC-BP error feedback in the backward direction
— on a simulated stand-in for Cora, and compares it against training with
no compression.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ECGraphConfig, train_ecgraph
from repro.graph import load_dataset


def main() -> None:
    # A Cora-statistics graph (the offline stand-in; see DESIGN.md).
    graph = load_dataset("cora", profile="full", seed=0)
    print(graph.summary())
    print()

    # The paper's full EC-Graph configuration is the default.
    ec_run = train_ecgraph(
        graph,
        num_workers=6,
        num_layers=2,
        hidden_dim=16,
        num_epochs=100,
        name="EC-Graph",
    )

    # The same system with raw float32 messages (the paper's Non-cp).
    noncp_run = train_ecgraph(
        graph,
        num_workers=6,
        num_layers=2,
        hidden_dim=16,
        num_epochs=100,
        config=ECGraphConfig().as_non_cp(),
        name="Non-cp",
    )

    print(f"{'run':10s} {'test acc':>9s} {'traffic':>12s} {'epoch time':>11s}")
    for run in (ec_run, noncp_run):
        print(
            f"{run.name:10s} {run.final_test_accuracy:9.4f} "
            f"{run.total_bytes() / 1e6:10.2f}MB "
            f"{run.avg_epoch_seconds() * 1e3:9.2f}ms"
        )
    saved = 1 - ec_run.total_bytes() / noncp_run.total_bytes()
    print(f"\nEC-Graph moved {saved:.0%} fewer bytes at matching accuracy.")


if __name__ == "__main__":
    main()
