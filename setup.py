"""Legacy setup shim: lets ``pip install -e .`` work offline where the
PEP 660 editable path is unavailable (no ``wheel`` package)."""

from setuptools import setup

setup()
