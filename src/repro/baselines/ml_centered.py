"""ML-centered distributed GNN training (AliGraph / AGL architecture).

In the ML-centered family (paper section II-B and Fig. 2b) the graph and
features live in a storage layer; each worker pulls the *entire L-hop
neighbourhood* of its target vertices up front and then trains without
ever talking to other workers. The price is the paper's Table II: memory
and computation grow like ``g^L`` because neighbourhoods overlap across
workers, and practical deployments cap the cached fanout per vertex,
which truncates aggregation and costs accuracy — the effect behind
AliGraph-FG's accuracy gap in Table V (largest on high-degree graphs).

This trainer reproduces that architecture honestly on the shared
substrate:

* preprocessing pulls the capped L-hop neighbourhood of each worker's
  targets from storage (bytes charged as ``lhop_pull`` traffic and folded
  into the Fig. 9 preprocessing bar);
* every epoch runs dense GCN forward/backward over the worker's cached
  subgraph — the cross-worker redundancy is real, measured compute;
* the only per-epoch traffic is parameter pull/push.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.sparse import csr_matrix

from repro.cluster.engine import ClusterRuntime
from repro.cluster.param_server import ParameterServerGroup
from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.gcn_math import (
    bias_gradient,
    layer_forward,
    weight_gradient,
)
from repro.core.models import bias_name, build_parameters, weight_name
from repro.core.results import ConvergenceRun, EpochResult
from repro.graph.attributed import AttributedGraph
from repro.graph.csr import CSRGraph
from repro.nn.losses import softmax_cross_entropy
from repro.nn.optim import make_optimizer
from repro.partition.hashing import HashPartitioner

__all__ = ["MLCenteredTrainer", "capped_khop_subgraph"]


def capped_khop_subgraph(
    adjacency: CSRGraph,
    targets: np.ndarray,
    fanouts: list[int],
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Expand targets hop by hop, keeping at most ``fanouts[h]`` in-edges.

    Returns ``(vertices, edges)`` where ``vertices`` is the sorted cached
    vertex set and ``edges`` is an ``(m, 2)`` array of kept ``(dst, src)``
    aggregation edges (``dst`` aggregates ``src``). This is the GraphFlat
    materialization of AGL / the neighbour cache of AliGraph.
    """
    targets = np.unique(np.asarray(targets, dtype=np.int64))
    visited = set(int(v) for v in targets)
    frontier = targets
    dst_list: list[np.ndarray] = []
    src_list: list[np.ndarray] = []
    for fanout in fanouts:
        next_frontier: list[int] = []
        for v in frontier:
            nbrs = adjacency.neighbors(int(v))
            if nbrs.size > fanout:
                nbrs = rng.choice(nbrs, size=fanout, replace=False)
            dst_list.append(np.full(nbrs.size, v, dtype=np.int64))
            src_list.append(nbrs.astype(np.int64))
            for u in nbrs:
                u = int(u)
                if u not in visited:
                    visited.add(u)
                    next_frontier.append(u)
        frontier = np.array(next_frontier, dtype=np.int64)
        if frontier.size == 0:
            break
    vertices = np.array(sorted(visited), dtype=np.int64)
    if dst_list:
        edges = np.stack(
            [np.concatenate(dst_list), np.concatenate(src_list)], axis=1
        )
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    return vertices, edges


class MLCenteredTrainer:
    """AliGraph-FG / AGL style training on the simulated cluster."""

    def __init__(
        self,
        graph: AttributedGraph,
        model_config: ModelConfig,
        cluster_spec: ClusterSpec,
        cache_fanouts: list[int],
        config: ECGraphConfig | None = None,
        name: str = "ml-centered",
    ):
        """Args:
        cache_fanouts: Per-hop cap on cached in-neighbours. AliGraph-FG
            uses a uniform storage cap; AGL uses its sampling ratios.
        config: Reused for optimizer/learning-rate/seed settings; the
            exchange-policy fields are ignored (no halo exchange here).
        """
        if len(cache_fanouts) != model_config.num_layers:
            raise ValueError("need one cache fanout per layer")
        self.graph = graph
        self.model_config = model_config
        self.spec = cluster_spec
        self.config = config or ECGraphConfig()
        self.cache_fanouts = list(cache_fanouts)
        self.name = name

        self.runtime: ClusterRuntime | None = None
        self.servers: ParameterServerGroup | None = None
        self.params = None
        self._workers: list[dict] = []
        self._preprocessing_seconds = 0.0
        self._global_train_count = 0
        self._setup_done = False

    # ------------------------------------------------------------------
    def setup(self) -> None:
        if self._setup_done:
            return
        start = time.perf_counter()
        rng = np.random.default_rng(self.config.seed)

        self.runtime = ClusterRuntime(self.spec)
        self.servers = ParameterServerGroup(
            self.runtime,
            lambda: make_optimizer(
                self.config.optimizer,
                self.config.learning_rate,
                weight_decay=self.config.weight_decay,
            ),
            reduce="sum",
        )
        self.params = build_parameters(
            self.model_config,
            self.graph.feature_dim,
            self.graph.num_classes,
            seed=self.config.seed,
        )
        for pname, tensor in self.params.tensors.items():
            self.servers.register(pname, tensor.copy())

        partition = HashPartitioner().partition(
            self.graph.adjacency, self.spec.num_workers
        )
        degrees = np.diff(self.graph.adjacency.indptr).astype(np.float64)
        inv_sqrt = 1.0 / np.sqrt(degrees + 1.0)

        self._global_train_count = int(self.graph.train_mask.sum())
        machines = self.spec.num_machines
        for worker in range(self.spec.num_workers):
            targets = partition.part_vertices(worker)
            vertices, edges = capped_khop_subgraph(
                self.graph.adjacency, targets, self.cache_fanouts, rng
            )
            index = {int(v): i for i, v in enumerate(vertices)}
            n_cached = vertices.shape[0]

            dst = np.fromiter(
                (index[int(v)] for v in edges[:, 0]), dtype=np.int64,
                count=edges.shape[0],
            )
            src = np.fromiter(
                (index[int(v)] for v in edges[:, 1]), dtype=np.int64,
                count=edges.shape[0],
            )
            # GCN symmetric normalization with *global* degrees, plus
            # normalized self-loops; sampled edges are not rescaled, which
            # is exactly the downward aggregation bias of a capped cache.
            weights = inv_sqrt[edges[:, 0]] * inv_sqrt[edges[:, 1]]
            loop_idx = np.arange(n_cached, dtype=np.int64)
            loop_w = inv_sqrt[vertices] * inv_sqrt[vertices]
            a_sub = csr_matrix(
                (
                    np.concatenate([weights, loop_w]).astype(np.float32),
                    (
                        np.concatenate([dst, loop_idx]),
                        np.concatenate([src, loop_idx]),
                    ),
                ),
                shape=(n_cached, n_cached),
            )

            target_rows = np.array(
                [index[int(v)] for v in targets], dtype=np.int64
            )
            target_mask = np.zeros(n_cached, dtype=bool)
            target_mask[target_rows] = True

            self._workers.append(
                {
                    "vertices": vertices,
                    "a": a_sub,
                    "a_t": a_sub.T.tocsr(),
                    "features": self.graph.features[vertices],
                    "labels": self.graph.labels[vertices],
                    "train": self.graph.train_mask[vertices] & target_mask,
                    "val": self.graph.val_mask[vertices] & target_mask,
                    "test": self.graph.test_mask[vertices] & target_mask,
                }
            )
            # Preprocessing pull: features + adjacency of the cached
            # neighbourhood come from storage spread over all machines, so
            # (machines - 1) / machines of the bytes cross the network.
            # Byte count from shape arithmetic — slicing the feature
            # matrix here would gather the rows a second time just to
            # read .nbytes off the copy.
            feature_row_bytes = (
                self.graph.feature_dim * self.graph.features.dtype.itemsize
            )
            pull_bytes = (
                vertices.shape[0] * feature_row_bytes + edges.shape[0] * 8
            )
            remote = int(pull_bytes * (machines - 1) / max(machines, 1))
            if remote and machines > 1:
                src_machine = (self.spec.worker_machine(worker) + 1) % machines
                self.runtime.meter.charge(
                    src_machine,
                    self.spec.worker_machine(worker),
                    remote,
                    "lhop_pull",
                )

        self._preprocessing_seconds = time.perf_counter() - start
        pull_bytes = self.runtime.meter.epoch_bytes()
        if pull_bytes:
            self._preprocessing_seconds += self.runtime.meter.epoch_comm_seconds(
                self.spec.network, machines
            )
            self.runtime.meter.reset_epoch()
        self._setup_done = True

    # ------------------------------------------------------------------
    def run_epoch(self, t: int) -> EpochResult:
        self.setup()
        num_layers = self.params.num_layers
        counters = {"train": [0, 0], "val": [0, 0], "test": [0, 0]}
        total_loss = 0.0
        all_grads: dict[int, dict[str, np.ndarray]] = {}

        for worker, local in enumerate(self._workers):
            names = self.params.all_param_names()
            pulled = self.servers.pull(worker, names)
            caches = []
            h = local["features"]
            with self.runtime.worker_compute(worker):
                for layer in range(1, num_layers + 1):
                    weight = pulled[weight_name(layer - 1)]
                    bias = pulled.get(bias_name(layer - 1))
                    cache = layer_forward(
                        local["a"],
                        h,
                        weight,
                        bias,
                        self.params.activation,
                        is_last=(layer == num_layers),
                    )
                    caches.append(cache)
                    h = cache.output

                result = softmax_cross_entropy(
                    h, local["labels"], local["train"]
                )
                local_count = int(local["train"].sum())
                scale = (
                    local_count / self._global_train_count
                    if self._global_train_count
                    else 0.0
                )
                total_loss += result.loss * scale
                g = (result.grad * scale).astype(np.float32)

                grads: dict[str, np.ndarray] = {}
                for layer in range(num_layers, 0, -1):
                    cache = caches[layer - 1]
                    grads[weight_name(layer - 1)] = weight_gradient(
                        cache, local["a"], g
                    )
                    if self.params.use_bias:
                        grads[bias_name(layer - 1)] = bias_gradient(g)
                    if layer > 1:
                        weight = pulled[weight_name(layer - 1)]
                        dh = (local["a_t"] @ g) @ weight.T
                        g = (
                            dh
                            * self.params.activation.derivative(
                                caches[layer - 2].pre_activation
                            )
                        ).astype(np.float32)
                all_grads[worker] = grads

                predictions = h.argmax(axis=1)
                counters["train"][0] += result.correct
                counters["train"][1] += result.count
                for split in ("val", "test"):
                    mask = local[split]
                    counters[split][0] += int(
                        (predictions[mask] == local["labels"][mask]).sum()
                    )
                    counters[split][1] += int(mask.sum())

        for worker, grads in all_grads.items():
            self.servers.push(worker, grads)
        self.servers.apply_updates()
        breakdown = self.runtime.end_epoch()

        def _ratio(split: str) -> float:
            correct, count = counters[split]
            return correct / count if count else 0.0

        return EpochResult(
            epoch=t,
            loss=total_loss,
            train_accuracy=_ratio("train"),
            val_accuracy=_ratio("val"),
            test_accuracy=_ratio("test"),
            breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    def train(
        self,
        num_epochs: int,
        patience: int | None = None,
        name: str | None = None,
    ) -> ConvergenceRun:
        """Train for up to ``num_epochs`` epochs (see ECGraphTrainer)."""
        self.setup()
        run = ConvergenceRun(
            name=name or self.name,
            preprocessing_seconds=self._preprocessing_seconds,
            meta={
                "architecture": "ml-centered",
                "cache_fanouts": self.cache_fanouts,
                "num_workers": self.spec.num_workers,
                "dataset": self.graph.name,
                "num_layers": self.model_config.num_layers,
            },
        )
        best_val = -1.0
        stale = 0
        for t in range(num_epochs):
            result = self.run_epoch(t)
            run.epochs.append(result)
            if patience is not None:
                if result.val_accuracy > best_val + 1e-6:
                    best_val = result.val_accuracy
                    stale = 0
                else:
                    stale += 1
                    if stale >= patience:
                        break
        run.final_test_accuracy = run.epochs[-1].test_accuracy if run.epochs else None
        return run

    def cached_vertex_counts(self) -> list[int]:
        """Cached subgraph sizes per worker (Table II memory evidence)."""
        self.setup()
        return [w["vertices"].shape[0] for w in self._workers]
