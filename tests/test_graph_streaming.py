"""Equivalence tests for the streaming generators: ``stream_graph`` is
bit-identical to the materialized ``generate_graph``, ``stream_rmat_graph``
produces the same graph on the memory and mmap backends, and every
partitioner assigns identically whether the topology lives in RAM or in
chunk files on disk."""

import numpy as np
import pytest

from repro.graph.generators import GraphSpec, generate_graph
from repro.graph.rmat import RMATSpec
from repro.graph.streaming import stream_graph, stream_rmat_graph
from repro.graph.subgraph import induced_subgraph
from repro.partition import (
    BFSPartitioner,
    HashPartitioner,
    MetisLikePartitioner,
    SpectralPartitioner,
)
from repro.partition.stats import partition_stats

SPECS = [
    GraphSpec(
        name="uniform", num_vertices=400, avg_degree=10,
        feature_dim=16, num_classes=5, seed=3,
    ),
    GraphSpec(
        name="heavy-tail", num_vertices=350, avg_degree=8,
        feature_dim=8, num_classes=3, power_law=2.1,
        label_noise=0.1, seed=9,
    ),
]


def _assert_graphs_identical(a, b):
    np.testing.assert_array_equal(a.adjacency.indptr, b.adjacency.indptr)
    np.testing.assert_array_equal(a.adjacency.indices, b.adjacency.indices)
    np.testing.assert_array_equal(a.features, b.features)
    np.testing.assert_array_equal(a.labels, b.labels)
    np.testing.assert_array_equal(a.train_mask, b.train_mask)
    np.testing.assert_array_equal(a.val_mask, b.val_mask)
    np.testing.assert_array_equal(a.test_mask, b.test_mask)
    assert a.num_classes == b.num_classes


class TestStreamGraphBitIdentity:
    """stream_graph replays generate_graph's RNG sequence exactly."""

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_memory_backend_matches_materialized(self, spec):
        expected = generate_graph(spec)
        streamed = stream_graph(spec, backend="memory").materialize()
        _assert_graphs_identical(streamed, expected)

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.name)
    def test_mmap_backend_matches_materialized(self, spec, tmp_path):
        expected = generate_graph(spec)
        bundle = stream_graph(
            spec, backend="mmap", out_dir=tmp_path / spec.name,
            chunk_vertices=97,
        )
        _assert_graphs_identical(bundle.materialize(), expected)

    def test_odd_chunk_sizes_do_not_change_bytes(self, tmp_path):
        spec = SPECS[0]
        expected = generate_graph(spec)
        for chunk in (1 << 12, 101, 33):
            bundle = stream_graph(
                spec, backend="mmap", out_dir=tmp_path / f"c{chunk}",
                chunk_vertices=chunk,
            )
            _assert_graphs_identical(bundle.materialize(), expected)


class TestStreamRmatBackends:
    """The chunk-seeded R-MAT generator is backend-invariant."""

    SPEC = RMATSpec(scale=10, edge_factor=6, feature_dim=8, seed=17)

    def test_memory_vs_mmap_identical(self, tmp_path):
        mem = stream_rmat_graph(self.SPEC, backend="memory").materialize()
        disk = stream_rmat_graph(
            self.SPEC, backend="mmap", out_dir=tmp_path / "rmat",
            chunk_vertices=97,
        ).materialize()
        _assert_graphs_identical(mem, disk)

    def test_rows_sorted_and_deduplicated(self):
        g = stream_rmat_graph(self.SPEC, backend="memory").materialize()
        indptr, indices = g.adjacency.indptr, g.adjacency.indices
        for v in range(0, g.num_vertices, 57):
            row = indices[indptr[v]:indptr[v + 1]]
            assert np.all(np.diff(row) > 0), f"row {v} not strictly sorted"

    def test_chunk_edges_is_part_of_identity(self):
        # Different chunk_edges draw different RNG streams by design —
        # the parameter is documented as part of the graph's identity.
        a = stream_rmat_graph(self.SPEC, chunk_edges=1 << 12).materialize()
        b = stream_rmat_graph(self.SPEC, chunk_edges=1 << 10).materialize()
        assert not np.array_equal(a.adjacency.indices, b.adjacency.indices)


PARTITIONERS = [
    HashPartitioner(),
    BFSPartitioner(seed=0),
    MetisLikePartitioner(seed=0),
    SpectralPartitioner(seed=0),
]


class TestPartitionersStoreInvariant:
    """Each partitioner assigns identically over RAM and mmap topology."""

    @pytest.fixture(scope="class")
    def bundles(self, tmp_path_factory):
        spec = GraphSpec(
            name="part-equiv", num_vertices=320, avg_degree=9,
            feature_dim=8, num_classes=4, seed=5,
        )
        mem = stream_graph(spec, backend="memory")
        disk = stream_graph(
            spec, backend="mmap",
            out_dir=tmp_path_factory.mktemp("part") / "g",
            chunk_vertices=97,
        )
        return mem, disk

    @pytest.mark.parametrize(
        "partitioner", PARTITIONERS, ids=lambda p: p.name
    )
    def test_assignment_identical(self, partitioner, bundles):
        mem, disk = bundles
        a = partitioner.partition(mem.adjacency, 4)
        b = partitioner.partition(disk.adjacency, 4)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    @pytest.mark.parametrize(
        "partitioner", PARTITIONERS, ids=lambda p: p.name
    )
    def test_csr_path_matches_store_path(self, partitioner, bundles):
        mem, _ = bundles
        csr = mem.adjacency.to_csr()
        a = partitioner.partition(csr, 3)
        b = partitioner.partition(mem.adjacency, 3)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_partition_stats_identical(self, bundles):
        mem, disk = bundles
        partition = HashPartitioner().partition(mem.adjacency, 4)
        a = partition_stats(mem.adjacency, partition)
        b = partition_stats(disk.adjacency, partition)
        assert a == b

    def test_induced_subgraph_identical(self, bundles):
        mem, disk = bundles
        partition = HashPartitioner().partition(mem.adjacency, 4)
        owned = np.flatnonzero(partition.assignment == 0)
        ref = induced_subgraph(mem.materialize().adjacency, owned)
        for bundle in (mem, disk):
            sub = induced_subgraph(bundle.adjacency, owned)
            np.testing.assert_array_equal(
                sub.local_vertices, ref.local_vertices
            )
            np.testing.assert_array_equal(
                sub.remote_vertices, ref.remote_vertices
            )
            np.testing.assert_array_equal(sub.indptr, ref.indptr)
            np.testing.assert_array_equal(sub.indices, ref.indices)
