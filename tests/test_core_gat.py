"""Tests for the distributed GAT trainer.

Gradient correctness is established two ways: (1) the distributed
backward pass against finite differences of a dense single-worker
forward, and (2) distributed == standalone exact equivalence with raw
exchange — the same anchor the GCN trainer has.
"""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.gat import GATTrainer, attn_dst_name, attn_src_name


def _trainer(graph, workers, config=None, layers=2, hidden=6):
    return GATTrainer(
        graph, ModelConfig(num_layers=layers, hidden_dim=hidden),
        ClusterSpec(num_workers=workers),
        config or ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=5),
    )


class TestGradientsAgainstFiniteDifferences:
    def _loss_for(self, trainer, graph):
        """Standalone loss from current server parameters (exact FP)."""
        # Recompute the loss via one exact forward on worker states.
        from repro.nn.losses import softmax_cross_entropy

        num_layers = trainer.params.num_layers
        outputs = [s.features for s in trainer.workers]
        for layer in range(1, num_layers + 1):
            params = {
                name: trainer.servers.get(name)
                for name in trainer._layer_params(layer)
            }
            halos = [
                graph.features[s.sub.remote_vertices]
                if layer == 1
                else outputs_prev_halo[s.worker_id]
                for s in trainer.workers
            ]
            new_outputs = []
            outputs_prev_halo = []
            for state in trainer.workers:
                h_cat = np.concatenate(
                    [outputs[state.worker_id], halos[state.worker_id]],
                    axis=0,
                )
                cache = trainer._gat_layer_forward(
                    state.worker_id, h_cat, params, layer,
                    is_last=(layer == num_layers),
                )
                new_outputs.append(cache.output)
            outputs = new_outputs
            # Prepare halos for the next layer from the owners' outputs.
            outputs_prev_halo = []
            for state in trainer.workers:
                halo = np.zeros(
                    (state.num_halo, outputs[0].shape[1]), dtype=np.float32
                )
                for owner, slots in state.halo_slots.items():
                    rows = trainer.workers[owner].serves[state.worker_id]
                    halo[slots] = outputs[owner][rows]
                outputs_prev_halo.append(halo)

        total = 0.0
        global_train = int(graph.train_mask.sum())
        for state in trainer.workers:
            result = softmax_cross_entropy(
                outputs[state.worker_id], state.labels, state.train_mask
            )
            local = int(state.train_mask.sum())
            total += result.loss * (local / global_train if local else 0.0)
        return total

    @pytest.mark.parametrize("param_kind", ["W0", "asrc0", "adst1", "b0"])
    def test_pushed_gradients_match_finite_differences(
        self, small_graph, param_kind
    ):
        trainer = _trainer(small_graph, workers=1)
        trainer.setup()

        # Capture the summed gradient pushed by intercepting apply.
        captured = {}
        original_push = trainer.servers.push

        def spy_push(worker, grads):
            for name, grad in grads.items():
                captured[name] = captured.get(name, 0) + grad.astype(np.float64)
            original_push(worker, grads)

        trainer.servers.push = spy_push
        trainer._on_epoch_start(0)
        trainer._forward(0)
        # Run backward but skip the optimizer update so parameters stay
        # at their initial values for the finite-difference probe.
        original_apply = trainer.servers.apply_updates
        trainer.servers.apply_updates = lambda: None
        trainer._backward(0)
        trainer.servers.apply_updates = original_apply

        name = param_kind
        grad = captured[name]
        theta = trainer.servers.get(name)
        rng = np.random.default_rng(0)
        eps = 1e-3
        flat_indices = rng.choice(theta.size, size=min(8, theta.size),
                                  replace=False)
        for flat in flat_indices:
            idx = np.unravel_index(flat, theta.shape)
            original = theta[idx]
            theta[idx] = original + eps
            up = self._loss_for(trainer, small_graph)
            theta[idx] = original - eps
            down = self._loss_for(trainer, small_graph)
            theta[idx] = original
            numeric = (up - down) / (2 * eps)
            # float32 forward passes put ~1e-5 noise on each probed loss,
            # i.e. ~5e-3 absolute on the difference quotient.
            tolerance = 5e-3 + 0.05 * abs(numeric)
            assert grad[idx] == pytest.approx(numeric, abs=tolerance), (
                name, idx,
            )


class TestDistributedEquivalence:
    def test_losses_match_standalone(self, small_graph):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=5)
        single = _trainer(small_graph, 1, config)
        multi = _trainer(small_graph, 3, config)
        run1 = single.train(6)
        run3 = multi.train(6)
        for a, b in zip(run1.epochs, run3.epochs):
            assert a.loss == pytest.approx(b.loss, rel=1e-3, abs=1e-5)

    def test_parameters_match_after_training(self, small_graph):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=5)
        single = _trainer(small_graph, 1, config)
        multi = _trainer(small_graph, 2, config)
        single.train(5)
        multi.train(5)
        for name in single.servers.parameter_names():
            np.testing.assert_allclose(
                single.servers.get(name), multi.servers.get(name),
                atol=2e-4,
            )


class TestGATTraining:
    def test_learns_on_homophilous_graph(self, small_graph):
        trainer = _trainer(small_graph, 2)
        run = trainer.train(60)
        assert run.best_test_accuracy() > 0.7

    def test_attention_params_registered(self, small_graph):
        trainer = _trainer(small_graph, 2, layers=3)
        trainer.setup()
        names = trainer.servers.parameter_names()
        for layer in range(3):
            assert attn_src_name(layer) in names
            assert attn_dst_name(layer) in names

    def test_compressed_gat_trains(self, small_graph):
        config = ECGraphConfig(
            fp_mode="reqec", bp_mode="resec", fp_bits=4, bp_bits=4,
            seed=5,
        )
        trainer = _trainer(small_graph, 3, config)
        run = trainer.train(40)
        assert run.best_test_accuracy() > 0.6

    def test_compression_reduces_gat_traffic(self, small_graph):
        raw = _trainer(
            small_graph, 3,
            ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=5),
        ).train(5)
        compressed = _trainer(
            small_graph, 3,
            ECGraphConfig(fp_mode="compress", bp_mode="compress",
                          fp_bits=2, bp_bits=2, adaptive_bits=False,
                          seed=5),
        ).train(5)
        assert compressed.total_bytes() < raw.total_bytes()

    def test_evaluate_exact_returns_all_splits(self, small_graph):
        trainer = _trainer(small_graph, 2)
        trainer.train(5)
        metrics = trainer.evaluate_exact()
        assert set(metrics) == {"train", "val", "test"}


class TestMultiHead:
    def _mh_trainer(self, graph, workers, heads, config=None):
        return GATTrainer(
            graph, ModelConfig(num_layers=2, hidden_dim=6),
            ClusterSpec(num_workers=workers),
            config or ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=5),
            num_heads=heads,
        )

    def test_invalid_heads_rejected(self, small_graph):
        with pytest.raises(ValueError, match="num_heads"):
            self._mh_trainer(small_graph, 2, heads=0)

    def test_per_head_params_registered(self, small_graph):
        from repro.core.gat import head_weight_name

        trainer = self._mh_trainer(small_graph, 2, heads=3)
        trainer.setup()
        names = trainer.servers.parameter_names()
        for layer in range(2):
            for head in range(3):
                assert head_weight_name(layer, head) in names
                assert attn_src_name(layer, head) in names
                assert attn_dst_name(layer, head) in names

    def test_multihead_distributed_equals_standalone(self, small_graph):
        config = ECGraphConfig(fp_mode="raw", bp_mode="raw", seed=5)
        single = self._mh_trainer(small_graph, 1, heads=2, config=config)
        multi = self._mh_trainer(small_graph, 3, heads=2, config=config)
        run1 = single.train(5)
        run3 = multi.train(5)
        for a, b in zip(run1.epochs, run3.epochs):
            assert a.loss == pytest.approx(b.loss, rel=1e-3, abs=1e-5)

    def test_multihead_gradients_match_finite_differences(self, small_graph):
        from repro.core.gat import head_weight_name

        trainer = self._mh_trainer(small_graph, 1, heads=2)
        trainer.setup()
        captured = {}
        original_push = trainer.servers.push

        def spy_push(worker, grads):
            for name, grad in grads.items():
                captured[name] = captured.get(name, 0) + grad.astype(
                    np.float64
                )
            original_push(worker, grads)

        trainer.servers.push = spy_push
        trainer._forward(0)
        trainer.servers.apply_updates = lambda: None
        trainer._backward(0)

        fd = TestGradientsAgainstFiniteDifferences()
        rng = np.random.default_rng(0)
        eps = 1e-3
        for name in (head_weight_name(0, 1), attn_src_name(1, 1),
                     attn_dst_name(0, 1)):
            theta = trainer.servers.get(name)
            grad = captured[name]
            for flat in rng.choice(theta.size, size=min(5, theta.size),
                                   replace=False):
                idx = np.unravel_index(flat, theta.shape)
                original = theta[idx]
                theta[idx] = original + eps
                up = fd._loss_for(trainer, small_graph)
                theta[idx] = original - eps
                down = fd._loss_for(trainer, small_graph)
                theta[idx] = original
                numeric = (up - down) / (2 * eps)
                tolerance = 5e-3 + 0.05 * abs(numeric)
                assert grad[idx] == pytest.approx(numeric, abs=tolerance), (
                    name, idx,
                )

    def test_multihead_trains(self, small_graph):
        run = self._mh_trainer(small_graph, 2, heads=4).train(50)
        assert run.best_test_accuracy() > 0.7

    def test_multihead_with_compression(self, small_graph):
        config = ECGraphConfig(fp_mode="compress", bp_mode="resec",
                               fp_bits=4, bp_bits=4, adaptive_bits=False,
                               seed=5)
        run = self._mh_trainer(small_graph, 3, heads=2,
                               config=config).train(30)
        assert run.best_test_accuracy() > 0.6
