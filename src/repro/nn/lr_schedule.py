"""Learning-rate schedules.

The paper uses a fixed learning rate shared by all systems, but schedules
are a standard knob when tuning the compression/accuracy trade-off, so the
trainer accepts any callable ``epoch -> lr``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ConstantLR", "StepDecayLR", "ExponentialDecayLR", "CosineAnnealingLR"]


@dataclass(frozen=True)
class ConstantLR:
    """Always return the base learning rate (the paper's setting)."""

    base_lr: float

    def __call__(self, epoch: int) -> float:
        return self.base_lr


@dataclass(frozen=True)
class StepDecayLR:
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    base_lr: float
    step_size: int
    gamma: float = 0.5

    def __post_init__(self):
        if self.step_size <= 0:
            raise ValueError("step_size must be positive")

    def __call__(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


@dataclass(frozen=True)
class ExponentialDecayLR:
    """Smooth exponential decay ``base_lr * gamma**epoch``."""

    base_lr: float
    gamma: float = 0.99

    def __call__(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** epoch


@dataclass(frozen=True)
class CosineAnnealingLR:
    """Cosine annealing from ``base_lr`` down to ``min_lr`` over ``t_max``."""

    base_lr: float
    t_max: int
    min_lr: float = 0.0

    def __post_init__(self):
        if self.t_max <= 0:
            raise ValueError("t_max must be positive")

    def __call__(self, epoch: int) -> float:
        phase = min(epoch, self.t_max) / self.t_max
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * phase)
        )
