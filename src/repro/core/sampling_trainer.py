"""Sampling-based training (EC-Graph-S and the DistDGL baseline).

The paper's sampling mode keeps the graph-centered architecture but caps
each vertex's aggregation at a per-layer *fanout* (e.g. ``(10, 5)`` for a
2-layer GCN), which shrinks both compute and the remote halo that must be
fetched. Two sampling disciplines are modelled:

* **offline** (EC-Graph-S, AGL): neighbours are sampled once during
  preprocessing and reused every epoch — the sampling cost lands in the
  Fig. 9 preprocessing bar;
* **online** (DistDGL): neighbours are resampled every iteration, so the
  sampling cost recurs in every epoch — the paper observes this dominates
  DistDGL's time on constrained clusters.

Kept edges are rescaled by ``degree / fanout`` so the sampled aggregation
is an unbiased estimator of the full sum. ReqEC-FP keeps dense
per-channel trend state and is therefore not offered in sampling mode
(the paper describes it for full-batch training); EC-Graph-S runs plain
quantization forward and ResEC-BP backward.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix

from repro.cluster.topology import ClusterSpec
from repro.core.config import ECGraphConfig, ModelConfig
from repro.core.resec_bp import ResECPolicy
from repro.core.messages import ChannelKey
from repro.core.trainer import ECGraphTrainer
from repro.core.worker import WorkerState
from repro.graph.attributed import AttributedGraph
from repro.obs.tracing import monotonic_now
from repro.partition.base import Partition

__all__ = ["SampledECGraphTrainer"]


class SampledECGraphTrainer(ECGraphTrainer):
    """Distributed GCN training with per-layer neighbour fanouts."""

    def __init__(
        self,
        graph: AttributedGraph,
        model_config: ModelConfig,
        cluster_spec: ClusterSpec,
        fanouts: list[int],
        config: ECGraphConfig | None = None,
        online: bool = False,
        sampling_speedup: float = 20.0,
        partitioner: str = "hash",
        partition: Partition | None = None,
    ):
        """Args:
        fanouts: Per-layer neighbour caps, ``fanouts[l-1]`` for layer
            ``l``; length must equal the model's layer count.
        online: Resample every iteration (DistDGL) instead of once
            (EC-Graph-S / AGL).
        sampling_speedup: Divide measured Python sampling time by this to
            emulate native sampling kernels (same rationale as the codec
            speedup, see DESIGN.md).
        """
        config = config or ECGraphConfig(fp_mode="compress", bp_mode="resec")
        if config.fp_mode == "reqec":
            raise ValueError(
                "ReqEC-FP is a full-batch mechanism; use fp_mode='compress' "
                "or 'raw' in sampling mode"
            )
        if "delayed" in (config.fp_mode, config.bp_mode):
            raise ValueError(
                "delayed aggregation keeps dense per-channel caches and "
                "cannot track per-iteration sampled subsets; use raw or "
                "compress/resec in sampling mode"
            )
        if len(fanouts) != model_config.num_layers:
            raise ValueError(
                f"{len(fanouts)} fanouts for {model_config.num_layers} layers"
            )
        if any(f < 1 for f in fanouts):
            raise ValueError("fanouts must be >= 1")
        if sampling_speedup <= 0:
            raise ValueError("sampling_speedup must be positive")
        super().__init__(
            graph, model_config, cluster_spec, config,
            partitioner=partitioner, partition=partition,
        )
        self.fanouts = list(fanouts)
        self.online = online
        self.sampling_speedup = sampling_speedup
        self._sampled_adj: list[dict[int, csr_matrix]] = []
        self._subsets: dict[int, dict[tuple[int, int], np.ndarray]] = {}
        self._rng = np.random.default_rng(config.seed + 1)
        self._sampled_once = False

    # ------------------------------------------------------------------
    def setup(self) -> None:
        if self._setup_done:
            return
        super().setup()
        if isinstance(self._bp_policy, ResECPolicy):
            # Residual state spans each channel's full vertex list so
            # sampled subsets stay aligned across iterations.
            for layer in range(2, self.params.num_layers + 1):
                for state in self.workers:
                    for owner, wanted in state.requests.items():
                        key = ChannelKey(
                            layer=layer,
                            responder=owner,
                            requester=state.worker_id,
                        )
                        self._bp_policy.prime_residual(
                            key, wanted.shape[0], self.params.dims[layer]
                        )
        if not self.online:
            start = monotonic_now()
            with self.obs.span("sampling", mode="offline"):
                self._resample()
            self._preprocessing_seconds += (
                monotonic_now() - start
            ) / self.sampling_speedup
            self._sampled_once = True

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _resample(self) -> None:
        """Draw a fresh per-layer sampled adjacency for every worker."""
        self._sampled_adj = []
        needed_halo: dict[int, list[np.ndarray]] = {
            layer: [] for layer in range(1, self.params.num_layers + 1)
        }
        for state in self.workers:
            per_layer: dict[int, csr_matrix] = {}
            for layer in range(1, self.params.num_layers + 1):
                sampled, used_halo = self._sample_rows(
                    state, self.fanouts[layer - 1]
                )
                per_layer[layer] = sampled
                needed_halo[layer].append(used_halo)
            self._sampled_adj.append(per_layer)

        self._subsets = {}
        for layer, per_worker in needed_halo.items():
            layer_subsets: dict[tuple[int, int], np.ndarray] = {}
            for state, used in zip(self.workers, per_worker):
                for owner, slots in state.halo_slots.items():
                    rows_idx = np.flatnonzero(used[slots]).astype(np.int64)
                    layer_subsets[(owner, state.worker_id)] = rows_idx
            self._subsets[layer] = layer_subsets

    def _sample_rows(
        self, state: WorkerState, fanout: int
    ) -> tuple[csr_matrix, np.ndarray]:
        """Sample one worker's adjacency rows down to ``fanout`` entries.

        Returns the sampled matrix and a boolean mask over the worker's
        halo (which remote rows the sampled matrix references).
        """
        sub = state.sub
        indptr = sub.indptr
        indices = sub.indices
        weights = (
            sub.weights
            if sub.weights is not None
            else np.ones(sub.num_edges, dtype=np.float32)
        )
        out_indices: list[np.ndarray] = []
        out_weights: list[np.ndarray] = []
        out_counts = np.zeros(sub.num_local, dtype=np.int64)
        for row in range(sub.num_local):
            lo, hi = indptr[row], indptr[row + 1]
            degree = hi - lo
            if degree <= fanout:
                out_indices.append(indices[lo:hi])
                out_weights.append(weights[lo:hi])
                out_counts[row] = degree
            else:
                pick = self._rng.choice(degree, size=fanout, replace=False)
                scale = degree / fanout  # unbiased row-sum estimator
                out_indices.append(indices[lo + pick])
                out_weights.append(weights[lo + pick] * scale)
                out_counts[row] = fanout
        new_indptr = np.zeros(sub.num_local + 1, dtype=np.int64)
        np.cumsum(out_counts, out=new_indptr[1:])
        new_indices = (
            np.concatenate(out_indices)
            if out_indices
            else np.empty(0, dtype=np.int64)
        )
        new_weights = (
            np.concatenate(out_weights)
            if out_weights
            else np.empty(0, dtype=np.float32)
        )
        sampled = csr_matrix(
            (new_weights.astype(np.float32), new_indices, new_indptr),
            shape=(sub.num_local, sub.num_local + sub.num_remote),
        )
        used_halo = np.zeros(sub.num_remote, dtype=bool)
        remote_cols = new_indices[new_indices >= sub.num_local] - sub.num_local
        used_halo[remote_cols] = True
        return sampled, used_halo

    # ------------------------------------------------------------------
    # Trainer hooks
    # ------------------------------------------------------------------
    def _on_epoch_start(self, t: int) -> None:
        if self.online or not self._sampled_once:
            start = monotonic_now()
            with self.obs.span("sampling", mode="online", epoch=t):
                self._resample()
            elapsed = (monotonic_now() - start) / self.sampling_speedup
            self._sampled_once = True
            self.obs.metrics.inc("resamples")
            # Online sampling is coordinated by per-worker samplers; the
            # cost is per-worker compute plus request messages.
            per_worker = elapsed / max(self.spec.num_workers, 1)
            for state in self.workers:
                self.runtime.add_compute(state.worker_id, per_worker)
                for owner in state.requests:
                    self.runtime.send_worker_to_worker(
                        state.worker_id, owner, 64, "sampling"
                    )

    def _adjacency(self, state: WorkerState, layer: int):
        return self._sampled_adj[state.worker_id][layer]

    def _exchange_subset(self, layer: int, direction: str):
        del direction  # forward and backward touch the same sampled halo
        return self._subsets.get(layer)
