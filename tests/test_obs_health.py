"""Unit tests for the compression-health monitors."""

import math

import numpy as np
import pytest

from repro.analysis.theory import estimate_alpha, theorem1_bound
from repro.compression.quantization import BucketQuantizer
from repro.obs.health import CompressionHealthMonitor


class TestSelectorHealth:
    def test_candidate_fractions(self):
        mon = CompressionHealthMonitor()
        mon.record_selection((0, 1), (6, 3, 1), bits=4, t=0)
        mon.record_selection((1, 0), (4, 7, 9), bits=4, t=1)
        report = mon.report()
        total = 6 + 3 + 1 + 4 + 7 + 9
        assert report.candidate_fractions["compressed"] == pytest.approx(
            10 / total
        )
        assert report.candidate_fractions["predicted"] == pytest.approx(
            10 / total
        )
        assert report.candidate_fractions["average"] == pytest.approx(
            10 / total
        )

    def test_win_trajectory_is_per_iteration(self):
        mon = CompressionHealthMonitor()
        mon.record_selection((0, 1), (9, 1, 0), bits=4, t=0)
        mon.record_selection((0, 1), (0, 5, 0), bits=4, t=3)
        report = mon.report()
        assert report.win_trajectory == [(0, pytest.approx(0.1)),
                                         (3, pytest.approx(1.0))]

    def test_numpy_counts_accepted(self):
        mon = CompressionHealthMonitor()
        mon.record_selection((0, 1), np.array([2, 0, 0]), bits=4, t=0)
        assert mon.report().candidate_fractions["compressed"] == 1.0

    def test_empty_run(self):
        report = CompressionHealthMonitor().report()
        assert report.candidate_fractions == {
            "compressed": 0.0, "predicted": 0.0, "average": 0.0,
        }
        assert report.ok


class TestBitTrajectory:
    def test_events_and_current(self):
        mon = CompressionHealthMonitor()
        mon.record_bits((0, 1), 2)
        mon.record_bits((0, 1), 4)
        mon.record_bits((1, 0), 8)
        report = mon.report()
        assert report.bits_events == [((0, 1), 2), ((0, 1), 4), ((1, 0), 8)]
        assert report.bits_current == {(0, 1): 4, (1, 0): 8}


class TestResidualBound:
    def test_violation_flagged(self):
        """A residual far above the Theorem 1 bound must be reported."""
        mon = CompressionHealthMonitor(rho=1.5)
        mon.set_model(num_layers=2)
        alpha = estimate_alpha(BucketQuantizer(8))
        assert alpha < 1.0 / math.sqrt(1.0 + 1.5)  # theorem applies
        bound = theorem1_bound(alpha, 1.0, 2, 1, rho=1.5)
        mon.record_residual(
            layer=1, residual_norm=math.sqrt(bound) * 10,
            gradient_norm=1.0, bits=8,
        )
        report = mon.report()
        assert not report.ok
        assert len(report.violations) == 1
        assert "layer 1" in report.violations[0]
        check = report.residual_checks[0]
        assert check.violated and check.bound == pytest.approx(bound)

    def test_compliant_residual_passes(self):
        mon = CompressionHealthMonitor(rho=1.5)
        mon.set_model(num_layers=2)
        mon.record_residual(
            layer=1, residual_norm=1e-6, gradient_norm=1.0, bits=8,
        )
        report = mon.report()
        assert report.ok
        assert report.residual_checks[0].bound is not None
        assert not report.residual_checks[0].violated

    def test_alpha_outside_theorem_range_gives_no_bound(self):
        """1-bit quantization contracts too weakly for Theorem 1: the
        check is reported with ``bound=None`` and never flagged."""
        mon = CompressionHealthMonitor(rho=1.5)
        mon.set_model(num_layers=2)
        alpha = estimate_alpha(BucketQuantizer(1))
        assert alpha >= 1.0 / math.sqrt(1.0 + 1.5)
        mon.record_residual(
            layer=1, residual_norm=1e9, gradient_norm=1.0, bits=1,
        )
        report = mon.report()
        assert report.residual_checks[0].bound is None
        assert report.ok

    def test_max_residual_kept(self):
        mon = CompressionHealthMonitor()
        mon.set_model(num_layers=2)
        mon.record_residual(layer=1, residual_norm=2.0, gradient_norm=1.0,
                            bits=4)
        mon.record_residual(layer=1, residual_norm=1.0, gradient_norm=3.0,
                            bits=4)
        check = mon.report().residual_checks[0]
        assert check.max_residual_sq == pytest.approx(4.0)
        assert check.max_gradient_sq == pytest.approx(9.0)

    def test_no_model_depth_no_bound(self):
        mon = CompressionHealthMonitor()
        mon.record_residual(layer=1, residual_norm=1e9, gradient_norm=1.0,
                            bits=8)
        assert mon.report().residual_checks[0].bound is None


class TestLifecycle:
    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            CompressionHealthMonitor(rho=1.0)

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            CompressionHealthMonitor().set_model(0)

    def test_reset(self):
        mon = CompressionHealthMonitor()
        mon.record_selection((0, 1), (1, 0, 0), bits=4, t=0)
        mon.record_bits((0, 1), 2)
        mon.record_residual(layer=1, residual_norm=1.0, gradient_norm=1.0,
                            bits=4)
        mon.reset()
        report = mon.report()
        assert report.bits_events == []
        assert report.residual_checks == []
        assert report.win_trajectory == []

    def test_as_dict_round_trips_json(self):
        import json

        mon = CompressionHealthMonitor()
        mon.set_model(2)
        mon.record_selection((0, 1), (1, 2, 3), bits=4, t=0)
        mon.record_bits((0, 1), 2)
        mon.record_residual(layer=1, residual_norm=0.1, gradient_norm=1.0,
                            bits=4)
        rendered = json.loads(json.dumps(mon.report().as_dict()))
        assert rendered["ok"] is True
        assert rendered["bits_events"] == [{"pair": "0->1", "bits": 2}]
